//! The core immutable graph type.

use std::fmt;

/// Identifier of a node inside a single [`LabeledGraph`] (0-based, dense).
pub type NodeId = u32;

/// A vertex label. The paper assumes labels come from an arbitrary domain
/// `U`; we represent them as `u32` (callers may intern strings if needed).
pub type Label = u32;

/// An immutable, vertex-labelled, undirected graph in CSR form.
///
/// Invariants (established by [`crate::GraphBuilder`]):
///
/// * adjacency lists are sorted ascending and contain no duplicates;
/// * each undirected edge `{u, v}` appears exactly twice: `v` in the list of
///   `u` and `u` in the list of `v`;
/// * there are no self-loops.
///
/// The structure is deliberately compact (`u32` everywhere) because datasets
/// hold thousands of graphs and queries are created at a high rate by the
/// workload generators.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LabeledGraph {
    pub(crate) labels: Vec<Label>,
    pub(crate) offsets: Vec<u32>,
    pub(crate) neighbors: Vec<NodeId>,
}

impl LabeledGraph {
    /// Builds a graph directly from node labels and an undirected edge list.
    ///
    /// Duplicate edges, reversed duplicates and self-loops are removed. Edge
    /// endpoints must be valid node indices (panics otherwise — this is a
    /// programming error, not an input error; use [`crate::io`] for parsing
    /// untrusted inputs).
    pub fn from_parts(labels: Vec<Label>, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = crate::GraphBuilder::with_labels(labels);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The empty graph.
    pub fn empty() -> Self {
        LabeledGraph {
            labels: Vec::new(),
            offsets: vec![0],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Sorted list of neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether the undirected edge `{u, v}` exists (O(log deg(u))).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids, `0..n`.
    #[inline]
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count() as NodeId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            u: 0,
            idx: 0,
        }
    }

    /// Number of distinct labels appearing in the graph.
    pub fn distinct_label_count(&self) -> usize {
        let mut ls: Vec<Label> = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.node_count() as f64
        }
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Extracts the subgraph spanned by a set of undirected edges of `self`.
    ///
    /// Node ids are remapped densely in order of first appearance; labels are
    /// copied from the source. Returns the subgraph and the mapping from new
    /// node id to original node id. Duplicate / reversed edges are merged.
    pub fn edge_subgraph(&self, edges: &[(NodeId, NodeId)]) -> (LabeledGraph, Vec<NodeId>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.node_count()];
        let mut back: Vec<NodeId> = Vec::new();
        let mut labels: Vec<Label> = Vec::new();
        let mut remapped: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());
        let intern = |orig: NodeId,
                      map: &mut Vec<Option<NodeId>>,
                      back: &mut Vec<NodeId>,
                      labels: &mut Vec<Label>| {
            if let Some(id) = map[orig as usize] {
                id
            } else {
                let id = back.len() as NodeId;
                map[orig as usize] = Some(id);
                back.push(orig);
                labels.push(self.label(orig));
                id
            }
        };
        for &(u, v) in edges {
            let nu = intern(u, &mut map, &mut back, &mut labels);
            let nv = intern(v, &mut map, &mut back, &mut labels);
            remapped.push((nu, nv));
        }
        (LabeledGraph::from_parts(labels, &remapped), back)
    }

    /// Relabels every node through `f`, preserving structure.
    pub fn relabeled(&self, mut f: impl FnMut(NodeId, Label) -> Label) -> LabeledGraph {
        let labels = self
            .nodes()
            .map(|v| f(v, self.label(v)))
            .collect::<Vec<_>>();
        LabeledGraph {
            labels,
            offsets: self.offsets.clone(),
            neighbors: self.neighbors.clone(),
        }
    }

    /// Rough in-memory footprint in bytes (used for space-overhead
    /// experiments, paper §7.3).
    pub fn memory_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<Label>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
    }
}

impl fmt::Debug for LabeledGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LabeledGraph(n={}, m={}, labels={:?}, edges={:?})",
            self.node_count(),
            self.edge_count(),
            self.labels,
            self.edges().collect::<Vec<_>>()
        )
    }
}

/// Iterator over undirected edges; see [`LabeledGraph::edges`].
pub struct EdgeIter<'g> {
    graph: &'g LabeledGraph,
    u: NodeId,
    idx: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.graph.node_count() as NodeId;
        while self.u < n {
            let nbrs = self.graph.neighbors(self.u);
            while self.idx < nbrs.len() {
                let v = nbrs[self.idx];
                self.idx += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> LabeledGraph {
        LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.distinct_label_count(), 3);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = LabeledGraph::from_parts(vec![0; 5], &[(4, 0), (2, 1), (0, 2), (3, 0)]);
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &w in nbrs {
                assert!(g.has_edge(w, v), "symmetric");
            }
        }
    }

    #[test]
    fn duplicate_and_self_edges_removed() {
        let g = LabeledGraph::from_parts(vec![0, 0], &[(0, 1), (1, 0), (0, 1), (0, 0)]);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::empty();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let disconnected = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1)]);
        assert!(!disconnected.is_connected());
        let single = LabeledGraph::from_parts(vec![7], &[]);
        assert!(single.is_connected());
    }

    #[test]
    fn edge_subgraph_remaps_densely() {
        let g = LabeledGraph::from_parts(vec![10, 11, 12, 13], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (sub, back) = g.edge_subgraph(&[(2, 3), (3, 0)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(back, vec![2, 3, 0]);
        assert_eq!(sub.labels(), &[12, 13, 10]);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn relabeled_preserves_structure() {
        let g = triangle();
        let r = g.relabeled(|_, l| l + 100);
        assert_eq!(r.labels(), &[100, 101, 102]);
        assert_eq!(r.edge_count(), 3);
        assert!(r.has_edge(0, 1));
    }

    #[test]
    fn memory_estimate_positive() {
        assert!(triangle().memory_bytes() > 0);
    }
}
