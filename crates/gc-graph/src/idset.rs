//! Operations on sorted sets of [`GraphId`]s.
//!
//! Candidate sets and answer sets are represented throughout GraphCache as
//! strictly ascending `Vec<GraphId>`; union / intersection / difference are
//! linear merges. The candidate-set pruner (paper §5.1, equations (1) and
//! (2)) is built from exactly these three operations.

use crate::GraphId;

/// Asserts (in debug builds) that a slice is strictly ascending.
#[inline]
pub fn debug_assert_sorted(s: &[GraphId]) {
    debug_assert!(
        s.windows(2).all(|w| w[0] < w[1]),
        "id set not sorted/unique"
    );
}

/// Sorts and deduplicates a vector in place, making it a valid id set.
pub fn normalize(v: &mut Vec<GraphId>) {
    v.sort_unstable();
    v.dedup();
}

/// `a ∩ b`.
pub fn intersect(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    debug_assert_sorted(a);
    debug_assert_sorted(b);
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// `a ∪ b`.
pub fn union(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    debug_assert_sorted(a);
    debug_assert_sorted(b);
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a \ b`.
pub fn difference(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    debug_assert_sorted(a);
    debug_assert_sorted(b);
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// Whether sorted `a` contains `x` (binary search).
#[inline]
pub fn contains(a: &[GraphId], x: GraphId) -> bool {
    a.binary_search(&x).is_ok()
}

/// The full id set `{0, …, n-1}` (what SI methods use as their "candidate
/// set": every dataset graph, paper §4).
pub fn full(n: usize) -> Vec<GraphId> {
    (0..n as u32).map(GraphId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<GraphId> {
        v.iter().copied().map(GraphId).collect()
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(
            intersect(&ids(&[1, 3, 5, 7]), &ids(&[2, 3, 7, 9])),
            ids(&[3, 7])
        );
        assert_eq!(intersect(&ids(&[]), &ids(&[1])), ids(&[]));
    }

    #[test]
    fn union_basic() {
        assert_eq!(
            union(&ids(&[1, 3, 5]), &ids(&[2, 3, 6])),
            ids(&[1, 2, 3, 5, 6])
        );
        assert_eq!(union(&ids(&[]), &ids(&[])), ids(&[]));
        assert_eq!(union(&ids(&[1]), &ids(&[])), ids(&[1]));
    }

    #[test]
    fn difference_basic() {
        assert_eq!(
            difference(&ids(&[1, 2, 3, 4]), &ids(&[2, 4, 8])),
            ids(&[1, 3])
        );
        assert_eq!(difference(&ids(&[]), &ids(&[1])), ids(&[]));
        assert_eq!(difference(&ids(&[1, 2]), &ids(&[])), ids(&[1, 2]));
    }

    #[test]
    fn set_algebra_laws() {
        let a = ids(&[0, 2, 4, 6, 8]);
        let b = ids(&[1, 2, 3, 4]);
        // |A| = |A∩B| + |A\B|
        assert_eq!(a.len(), intersect(&a, &b).len() + difference(&a, &b).len());
        // A∪B = (A\B) ∪ B
        assert_eq!(union(&a, &b), union(&difference(&a, &b), &b));
    }

    #[test]
    fn contains_and_full() {
        let f = full(4);
        assert_eq!(f, ids(&[0, 1, 2, 3]));
        assert!(contains(&f, GraphId(2)));
        assert!(!contains(&f, GraphId(9)));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut v = ids(&[5, 1, 5, 3, 1]);
        normalize(&mut v);
        assert_eq!(v, ids(&[1, 3, 5]));
    }
}
