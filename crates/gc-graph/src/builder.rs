//! Incremental construction of [`LabeledGraph`]s.

use crate::graph::{Label, LabeledGraph, NodeId};

/// Builds a [`LabeledGraph`] incrementally.
///
/// The builder accepts edges in any order, including duplicates, reversed
/// duplicates and self-loops; `build` normalises everything into the CSR
/// invariants documented on [`LabeledGraph`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `labels.len()` nodes.
    pub fn with_labels(labels: Vec<Label>) -> Self {
        GraphBuilder {
            labels,
            edges: Vec::new(),
        }
    }

    /// Adds a node with the given label, returning its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        id
    }

    /// Adds an undirected edge. Self-loops are silently dropped (the paper's
    /// model has none); duplicates are merged at `build` time.
    ///
    /// # Panics
    /// If either endpoint is not a node added earlier.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.labels.len() && (v as usize) < self.labels.len(),
            "edge ({u}, {v}) references a node that was never added (n={})",
            self.labels.len()
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Returns true if the undirected edge was added before (linear scan —
    /// intended for generator-time checks on small graphs only).
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge insertions so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`LabeledGraph`].
    pub fn build(mut self) -> LabeledGraph {
        let n = self.labels.len();
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut degree = vec![0u32; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; acc as usize];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Edges were inserted in sorted (u, v) order with u < v, so each
        // node's list is already sorted: for node w, all smaller neighbours
        // arrive first (from pairs where w is the second endpoint, ordered by
        // the first), then larger ones (pairs where w is first). A debug
        // assertion guards the invariant.
        debug_assert!((0..n).all(|w| {
            let lo = offsets[w] as usize;
            let hi = offsets[w + 1] as usize;
            neighbors[lo..hi].windows(2).all(|p| p[0] < p[1])
        }));
        LabeledGraph {
            labels: self.labels,
            offsets,
            neighbors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(5);
        let c = b.add_node(6);
        let d = b.add_node(7);
        b.add_edge(a, c);
        b.add_edge(d, a);
        assert_eq!(b.node_count(), 3);
        assert!(b.contains_edge(c, a));
        assert!(!b.contains_edge(c, d));
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "references a node")]
    fn edge_to_unknown_node_panics() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_edge(0, 3);
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::with_labels(vec![1, 2]);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_sorted_after_unordered_insertions() {
        let mut b = GraphBuilder::with_labels(vec![0; 6]);
        for &(u, v) in &[(5, 0), (0, 3), (4, 0), (0, 1), (2, 0)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }
}
