//! Shared memory-accounting vocabulary for the workspace's `memory_bytes`
//! estimators.
//!
//! Every store that reports an approximate resident size (cache entries,
//! query-index arenas, the Window buffer, the fragment store) used to carry
//! its own hard-coded overhead constants (`+ 32`, `+ 96`, …), which drifted
//! independently and made the space-overhead comparison (paper §7.3) hard
//! to audit. This module is the single home for those constants and the
//! slice-sizing helper, so the accounting stays honest across layers: a
//! store never invents its own magic number, it names one of these.
//!
//! The numbers are deliberately *estimates* — stable, deterministic
//! approximations of allocator-resident bytes, not exact heap measurements.
//! They only ever feed relative comparisons (budgets, eviction pressure,
//! baseline-gated counters), so determinism matters more than precision.

/// Bytes of a contiguous slice of `len` elements of `T` (the payload of a
/// `Vec<T>`, an arena segment, or a fixed-size array).
pub fn slice_bytes<T>(len: usize) -> usize {
    len * std::mem::size_of::<T>()
}

/// Per-node bookkeeping of a hash-map entry that owns heap payloads
/// (bucket slot, hashes, and the key/value headers around the payload).
pub const MAP_NODE_OVERHEAD: usize = 48;

/// A small inline hash-map slot: fixed-size key and value with no owned
/// heap payload (e.g. `serial → slot` lookup tables).
pub const MAP_SLOT_BYTES: usize = 16;

/// Per-slot metadata of a query-index slot: serial, size pair, distinct
/// count, liveness and debt bookkeeping across the parallel arrays.
pub const INDEX_SLOT_BYTES: usize = 24;

/// Fixed overhead of one cached entry beyond its graph, answer range and
/// profile: the `Arc` headers, enum tags and slot metadata.
pub const ENTRY_OVERHEAD: usize = 32;

/// Fixed overhead of one Window-buffer entry beyond its graph, answer and
/// profile (timing fields, kind, fingerprint, expensiveness).
pub const WINDOW_ENTRY_OVERHEAD: usize = 72;

/// Fixed overhead of one stored fragment beyond its graph and occurrence
/// set (key, id, statistics row).
pub const FRAGMENT_OVERHEAD: usize = 96;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_bytes_scales_with_element_size() {
        assert_eq!(slice_bytes::<u32>(4), 16);
        assert_eq!(slice_bytes::<u64>(4), 32);
        assert_eq!(slice_bytes::<(u32, u32)>(3), 24);
        assert_eq!(slice_bytes::<u8>(0), 0);
    }

    #[test]
    fn overheads_are_nonzero_and_ordered() {
        // The constants are estimates, but their relative order encodes
        // real structure: a fragment row carries more bookkeeping than a
        // window entry, which carries more than a bare cache entry slot.
        const {
            assert!(ENTRY_OVERHEAD < WINDOW_ENTRY_OVERHEAD);
            assert!(WINDOW_ENTRY_OVERHEAD < FRAGMENT_OVERHEAD);
            assert!(MAP_SLOT_BYTES < MAP_NODE_OVERHEAD);
            assert!(INDEX_SLOT_BYTES > 0);
        }
    }
}
