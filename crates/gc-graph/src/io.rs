//! Text serialization of graphs and datasets.
//!
//! The format is the line-oriented one used by the GraphGrepSX / Grapes
//! distributions (one record per graph):
//!
//! ```text
//! # <name>
//! <node-count>
//! <label of node 0>
//! ...
//! <label of node n-1>
//! <edge-count>
//! <u> <v>
//! ...
//! ```
//!
//! Blank lines are ignored. All reads and writes are buffered (the perf book
//! is explicit that unbuffered small reads/writes dominate I/O time).

use crate::{GraphBuilder, GraphDataset, GraphError, LabeledGraph};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a single graph record to `w` under the given record name.
pub fn write_graph(w: &mut impl Write, name: &str, g: &LabeledGraph) -> std::io::Result<()> {
    writeln!(w, "# {name}")?;
    writeln!(w, "{}", g.node_count())?;
    for v in g.nodes() {
        writeln!(w, "{}", g.label(v))?;
    }
    writeln!(w, "{}", g.edge_count())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Writes a whole dataset; records are named by graph position.
pub fn write_dataset(w: impl Write, d: &GraphDataset) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    for (id, g) in d.iter() {
        write_graph(&mut w, &format!("{}", id.0), g)?;
    }
    w.flush()
}

/// Convenience wrapper: writes a dataset to a file path.
pub fn save_dataset(path: impl AsRef<Path>, d: &GraphDataset) -> std::io::Result<()> {
    write_dataset(std::fs::File::create(path)?, d)
}

/// Reads all graph records from `r`.
pub fn read_dataset(r: impl Read) -> Result<GraphDataset, GraphError> {
    let reader = BufReader::new(r);
    let mut graphs = Vec::new();
    let mut lines = NumberedLines::new(reader);
    while let Some((lineno, first)) = lines.next_nonblank()? {
        if !first.starts_with('#') {
            return Err(GraphError::parse(
                lineno,
                format!("expected '# <name>' record header, got {first:?}"),
            ));
        }
        graphs.push(read_record_body(&mut lines)?);
    }
    Ok(GraphDataset::new(graphs))
}

/// Convenience wrapper: reads a dataset from a file path.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<GraphDataset, GraphError> {
    read_dataset(std::fs::File::open(path)?)
}

fn read_record_body(lines: &mut NumberedLines<impl BufRead>) -> Result<LabeledGraph, GraphError> {
    let (lineno, text) = lines.expect_nonblank("node count")?;
    let n: usize = parse_num(lineno, &text, "node count")?;
    let mut builder = GraphBuilder::new();
    for _ in 0..n {
        let (lineno, text) = lines.expect_nonblank("node label")?;
        let label: u32 = parse_num(lineno, &text, "node label")?;
        builder.add_node(label);
    }
    let (lineno, text) = lines.expect_nonblank("edge count")?;
    let m: usize = parse_num(lineno, &text, "edge count")?;
    for _ in 0..m {
        let (lineno, text) = lines.expect_nonblank("edge")?;
        let mut parts = text.split_whitespace();
        let u: u32 = parse_num(lineno, parts.next().unwrap_or_default(), "edge endpoint u")?;
        let v: u32 = parse_num(lineno, parts.next().unwrap_or_default(), "edge endpoint v")?;
        if parts.next().is_some() {
            return Err(GraphError::parse(lineno, "trailing tokens after edge"));
        }
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::parse(
                lineno,
                format!("edge ({u}, {v}) out of range for {n} nodes"),
            ));
        }
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

fn parse_num<T: std::str::FromStr>(line: usize, text: &str, what: &str) -> Result<T, GraphError> {
    text.trim()
        .parse::<T>()
        .map_err(|_| GraphError::parse(line, format!("invalid {what}: {text:?}")))
}

/// Iterator over trimmed, numbered, non-blank lines.
struct NumberedLines<R> {
    reader: R,
    buf: String,
    lineno: usize,
}

impl<R: BufRead> NumberedLines<R> {
    fn new(reader: R) -> Self {
        NumberedLines {
            reader,
            buf: String::new(),
            lineno: 0,
        }
    }

    fn next_nonblank(&mut self) -> Result<Option<(usize, String)>, GraphError> {
        loop {
            self.buf.clear();
            let read = self.reader.read_line(&mut self.buf)?;
            if read == 0 {
                return Ok(None);
            }
            self.lineno += 1;
            let trimmed = self.buf.trim();
            if !trimmed.is_empty() {
                return Ok(Some((self.lineno, trimmed.to_owned())));
            }
        }
    }

    fn expect_nonblank(&mut self, what: &str) -> Result<(usize, String), GraphError> {
        self.next_nonblank()?.ok_or_else(|| {
            GraphError::parse(
                self.lineno + 1,
                format!("unexpected end of input: expected {what}"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphDataset;

    fn sample() -> GraphDataset {
        GraphDataset::new(vec![
            LabeledGraph::from_parts(vec![3, 1, 4], &[(0, 1), (1, 2)]),
            LabeledGraph::from_parts(vec![9], &[]),
        ])
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let mut bytes = Vec::new();
        write_dataset(&mut bytes, &d).unwrap();
        let back = read_dataset(&bytes[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.graph(crate::GraphId(0)).labels(), &[3, 1, 4]);
        assert_eq!(back.graph(crate::GraphId(0)).edge_count(), 2);
        assert_eq!(back.graph(crate::GraphId(1)).node_count(), 1);
    }

    #[test]
    fn roundtrip_via_files() {
        let dir = std::env::temp_dir().join(format!("gc-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.txt");
        save_dataset(&path, &sample()).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blank_lines_ignored() {
        let text = "\n# 0\n\n2\n5\n6\n\n1\n0 1\n\n";
        let d = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.graph(crate::GraphId(0)).edge_count(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_dataset("2\n1\n1\n0\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("record header"));
    }

    #[test]
    fn out_of_range_edge_is_error() {
        let err = read_dataset("# g\n2\n1\n1\n1\n0 5\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("out of range"));
    }

    #[test]
    fn truncated_record_is_error() {
        let err = read_dataset("# g\n3\n1\n1\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("unexpected end of input"));
    }

    #[test]
    fn bad_number_reports_line() {
        let err = read_dataset("# g\nxyz\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("line 2"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = read_dataset("# g\n2\n1\n1\n1\n0 1 7\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("trailing"));
    }
}
