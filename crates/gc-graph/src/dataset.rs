//! Graph datasets: ordered collections of graphs with summary statistics.

use crate::graph::{Label, LabeledGraph};
use std::fmt;

/// Identifier of a graph within a [`GraphDataset`] (its position).
///
/// Answer sets and candidate sets are sets of `GraphId`s, kept as sorted
/// `Vec<GraphId>` throughout the system for cheap union/intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId(pub u32);

impl GraphId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// An ordered collection of dataset graphs (`D = {G1, …, Gn}` of §3).
#[derive(Debug, Clone, Default)]
pub struct GraphDataset {
    graphs: Vec<LabeledGraph>,
}

impl GraphDataset {
    /// Creates a dataset from a vector of graphs.
    pub fn new(graphs: Vec<LabeledGraph>) -> Self {
        GraphDataset { graphs }
    }

    /// Number of graphs in the dataset.
    #[inline]
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the dataset holds no graphs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph with the given id.
    #[inline]
    pub fn graph(&self, id: GraphId) -> &LabeledGraph {
        &self.graphs[id.index()]
    }

    /// All graphs in id order.
    #[inline]
    pub fn graphs(&self) -> &[LabeledGraph] {
        &self.graphs
    }

    /// Iterator over all graph ids in order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = GraphId> {
        (0..self.graphs.len() as u32).map(GraphId)
    }

    /// Iterator over `(id, graph)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (GraphId, &LabeledGraph)> {
        self.graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (GraphId(i as u32), g))
    }

    /// Appends a graph, returning its id.
    pub fn push(&mut self, g: LabeledGraph) -> GraphId {
        let id = GraphId(self.graphs.len() as u32);
        self.graphs.push(g);
        id
    }

    /// The sorted set of distinct labels across all graphs.
    pub fn label_domain(&self) -> Vec<Label> {
        let mut all: Vec<Label> = self
            .graphs
            .iter()
            .flat_map(|g| g.labels().iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Summary statistics in the format the paper reports for its datasets
    /// (§7.2: graph count, avg/max nodes, avg/max edges, avg degree).
    pub fn stats(&self) -> DatasetStats {
        let n = self.graphs.len();
        let mut s = DatasetStats {
            graph_count: n,
            ..DatasetStats::default()
        };
        if n == 0 {
            return s;
        }
        let mut node_sum = 0usize;
        let mut edge_sum = 0usize;
        let mut degree_sum = 0.0f64;
        for g in &self.graphs {
            node_sum += g.node_count();
            edge_sum += g.edge_count();
            degree_sum += g.avg_degree();
            s.max_nodes = s.max_nodes.max(g.node_count());
            s.max_edges = s.max_edges.max(g.edge_count());
        }
        s.avg_nodes = node_sum as f64 / n as f64;
        s.avg_edges = edge_sum as f64 / n as f64;
        s.avg_degree = degree_sum / n as f64;
        let mean = s.avg_nodes;
        s.std_nodes = (self
            .graphs
            .iter()
            .map(|g| {
                let d = g.node_count() as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64)
            .sqrt();
        s.distinct_labels = self.label_domain().len();
        s
    }

    /// Total memory footprint of all graphs (bytes, approximate).
    pub fn memory_bytes(&self) -> usize {
        self.graphs.iter().map(|g| g.memory_bytes()).sum()
    }
}

impl From<Vec<LabeledGraph>> for GraphDataset {
    fn from(graphs: Vec<LabeledGraph>) -> Self {
        GraphDataset::new(graphs)
    }
}

/// Summary statistics of a dataset, mirroring the figures quoted in §7.2.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetStats {
    /// Number of graphs.
    pub graph_count: usize,
    /// Mean node count per graph.
    pub avg_nodes: f64,
    /// Standard deviation of node counts.
    pub std_nodes: f64,
    /// Largest node count.
    pub max_nodes: usize,
    /// Mean edge count per graph.
    pub avg_edges: f64,
    /// Largest edge count.
    pub max_edges: usize,
    /// Mean of per-graph average degree.
    pub avg_degree: f64,
    /// Number of distinct labels in the whole dataset.
    pub distinct_labels: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} graphs | nodes avg {:.1} (std {:.1}, max {}) | edges avg {:.1} (max {}) | avg degree {:.2} | {} labels",
            self.graph_count,
            self.avg_nodes,
            self.std_nodes,
            self.max_nodes,
            self.avg_edges,
            self.max_edges,
            self.avg_degree,
            self.distinct_labels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> GraphDataset {
        GraphDataset::new(vec![
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
            LabeledGraph::from_parts(vec![1, 2, 3], &[(0, 1), (1, 2), (2, 0)]),
        ])
    }

    #[test]
    fn ids_and_lookup() {
        let d = small_dataset();
        assert_eq!(d.len(), 2);
        let ids: Vec<_> = d.ids().collect();
        assert_eq!(ids, vec![GraphId(0), GraphId(1)]);
        assert_eq!(d.graph(GraphId(1)).node_count(), 3);
        assert_eq!(format!("{}", GraphId(1)), "G1");
    }

    #[test]
    fn label_domain_sorted_dedup() {
        let d = small_dataset();
        assert_eq!(d.label_domain(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn stats_reasonable() {
        let d = small_dataset();
        let s = d.stats();
        assert_eq!(s.graph_count, 2);
        assert!((s.avg_nodes - 2.5).abs() < 1e-9);
        assert_eq!(s.max_nodes, 3);
        assert!((s.avg_edges - 2.0).abs() < 1e-9);
        assert_eq!(s.max_edges, 3);
        assert_eq!(s.distinct_labels, 4);
        assert!(s.avg_degree > 0.0);
        let shown = format!("{s}");
        assert!(shown.contains("2 graphs"));
    }

    #[test]
    fn empty_dataset_stats() {
        let d = GraphDataset::default();
        assert!(d.is_empty());
        assert_eq!(d.stats(), DatasetStats::default());
    }
}
