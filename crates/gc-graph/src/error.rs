//! Error type for graph parsing and I/O.

use std::fmt;

/// Errors produced while reading or validating graph data.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input text could not be parsed; carries line number and message.
    Parse {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A binary snapshot failed validation (truncated, checksum mismatch,
    /// malformed section); carries the byte offset and message. Always an
    /// error return, never a panic — corrupted snapshots must be
    /// diagnosable, not fatal.
    Snapshot {
        /// Byte offset where the problem was detected.
        offset: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl GraphError {
    /// Constructs a parse error at a 1-based line number.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        GraphError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Constructs a binary-snapshot validation error at a byte offset.
    pub fn snapshot(offset: usize, message: impl Into<String>) -> Self {
        GraphError::Snapshot {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Snapshot { offset, message } => {
                write!(f, "snapshot error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::Parse { .. } | GraphError::Snapshot { .. } => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let p = GraphError::parse(3, "bad token");
        assert_eq!(format!("{p}"), "parse error at line 3: bad token");
        assert!(p.source().is_none());

        let io = GraphError::from(std::io::Error::other("boom"));
        assert!(format!("{io}").contains("boom"));
        assert!(io.source().is_some());

        let s = GraphError::snapshot(128, "checksum mismatch");
        assert_eq!(
            format!("{s}"),
            "snapshot error at byte 128: checksum mismatch"
        );
        assert!(s.source().is_none());
    }
}
