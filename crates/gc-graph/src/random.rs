//! Seeded random-graph construction used by the synthetic dataset
//! generators (the stand-ins for AIDS / PDBS / PCM / GraphGen, see
//! DESIGN.md §4).

use crate::zipf::ZipfSampler;
use crate::{GraphBuilder, Label, LabeledGraph};
use rand::Rng;
use std::collections::HashSet;

/// How node labels are assigned by the generators.
#[derive(Debug, Clone)]
pub struct LabelModel {
    /// Number of distinct labels (the paper's label domain `U`).
    pub domain: u32,
    /// `None` for uniform labels; `Some(alpha)` for a Zipf-skewed label
    /// distribution (real chemical datasets are heavily skewed: carbon
    /// dominates AIDS, for instance).
    pub skew: Option<f64>,
}

impl LabelModel {
    /// Uniform labels over a domain of the given size.
    pub fn uniform(domain: u32) -> Self {
        LabelModel { domain, skew: None }
    }

    /// Zipf-skewed labels over a domain of the given size.
    pub fn zipf(domain: u32, alpha: f64) -> Self {
        LabelModel {
            domain,
            skew: Some(alpha),
        }
    }

    /// Builds the sampling closure for this model.
    pub fn sampler(&self) -> LabelSampler {
        LabelSampler {
            domain: self.domain,
            zipf: self.skew.map(|a| ZipfSampler::new(self.domain as usize, a)),
        }
    }
}

/// Materialised label sampler; see [`LabelModel::sampler`].
#[derive(Debug, Clone)]
pub struct LabelSampler {
    domain: u32,
    zipf: Option<ZipfSampler>,
}

impl LabelSampler {
    /// Draws a label.
    pub fn sample(&self, rng: &mut impl Rng) -> Label {
        match &self.zipf {
            Some(z) => z.sample(rng) as Label,
            None => rng.gen_range(0..self.domain),
        }
    }
}

/// Draws from a normal distribution (Box–Muller) and clamps to
/// `[min, max]`, rounding to the nearest integer. Used to sample per-graph
/// node counts that match the mean/std statistics the paper reports.
pub fn sample_normal_clamped(
    rng: &mut impl Rng,
    mean: f64,
    std: f64,
    min: usize,
    max: usize,
) -> usize {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = mean + std * z;
    (x.round() as i64).clamp(min as i64, max as i64) as usize
}

/// Generates a connected random graph with `n` nodes and an average degree
/// close to `target_avg_degree`.
///
/// Construction: a random spanning tree (uniform attachment) guarantees
/// connectivity, then extra distinct random edges are added until the target
/// edge count `m = max(n-1, n * target_avg_degree / 2)` is reached (or the
/// clique is exhausted). Labels come from `labels`.
pub fn random_connected_graph(
    rng: &mut impl Rng,
    n: usize,
    target_avg_degree: f64,
    labels: &LabelSampler,
) -> LabeledGraph {
    assert!(n > 0, "graph must have at least one node");
    let mut builder = GraphBuilder::new();
    for _ in 0..n {
        let l = labels.sample(rng);
        builder.add_node(l);
    }
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    // Spanning tree: attach node i to a uniformly random earlier node.
    for i in 1..n as u32 {
        let j = rng.gen_range(0..i);
        builder.add_edge(i, j);
        present.insert(if j < i { (j, i) } else { (i, j) });
    }
    if n < 2 {
        return builder.build();
    }
    let max_edges = n * (n - 1) / 2;
    let target_m = ((n as f64 * target_avg_degree / 2.0).round() as usize).clamp(n - 1, max_edges);
    let mut attempts = 0usize;
    let attempt_cap = target_m.saturating_mul(50) + 1000;
    while present.len() < target_m && attempts < attempt_cap {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if present.insert(key) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Extracts a connected subgraph of `g` with (approximately) `target_edges`
/// edges by breadth-first expansion from `start`, exactly as the paper's
/// Type-A generator does: "for each new node, all its edges connecting it to
/// already visited nodes are added to the generated query, until the desired
/// query size is reached" (§7.2).
///
/// The expansion is **deterministic** (adjacency order). This matters for
/// workload fidelity: repeated draws of the same `(graph, start)` pair yield
/// the *same* query at the same size — the exact-match repeats a cache
/// thrives on — and a smaller size yields an edge-prefix of a larger one, so
/// drill-down query sequences are genuinely nested (subgraph relations), as
/// the paper's motivating scenarios describe.
///
/// Returns `None` when `g` has no edges reachable from `start`.
pub fn bfs_edge_subgraph(
    g: &LabeledGraph,
    start: u32,
    target_edges: usize,
) -> Option<LabeledGraph> {
    if target_edges == 0 || (start as usize) >= g.node_count() || g.degree(start) == 0 {
        return None;
    }
    let mut visited: Vec<bool> = vec![false; g.node_count()];
    visited[start as usize] = true;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target_edges);
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    queue.push_back(start);
    'outer: while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
                // Add all edges from w to already-visited nodes.
                for &x in g.neighbors(w) {
                    if visited[x as usize] && x != w {
                        edges.push((w, x));
                        if edges.len() >= target_edges {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    if edges.is_empty() {
        return None;
    }
    let (sub, _) = g.edge_subgraph(&edges);
    Some(sub)
}

/// Extracts a connected subgraph with `target_edges` edges by a random walk
/// from `start` (the paper's Type-B answerable-pool extraction, §7.2). Edges
/// traversed by the walk are collected; the walk may revisit nodes.
pub fn random_walk_subgraph(
    g: &LabeledGraph,
    start: u32,
    target_edges: usize,
    rng: &mut impl Rng,
) -> Option<LabeledGraph> {
    if target_edges == 0 || g.degree(start) == 0 {
        return None;
    }
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    let mut current = start;
    let mut steps = 0usize;
    let step_cap = target_edges * 200 + 100;
    while edges.len() < target_edges && steps < step_cap {
        steps += 1;
        let nbrs = g.neighbors(current);
        if nbrs.is_empty() {
            break;
        }
        let next = nbrs[rng.gen_range(0..nbrs.len())];
        let key = if current < next {
            (current, next)
        } else {
            (next, current)
        };
        edges.insert(key);
        current = next;
    }
    if edges.is_empty() {
        return None;
    }
    let mut list: Vec<(u32, u32)> = edges.into_iter().collect();
    list.sort_unstable(); // deterministic node numbering given the seed
    let (sub, _) = g.edge_subgraph(&list);
    Some(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_graph_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(11);
        let labels = LabelModel::uniform(5).sampler();
        for &(n, d) in &[(1usize, 2.0), (2, 1.0), (30, 2.1), (60, 8.0)] {
            let g = random_connected_graph(&mut rng, n, d, &labels);
            assert_eq!(g.node_count(), n);
            assert!(g.is_connected(), "n={n} d={d} must be connected");
            if n > 10 {
                let want = n as f64 * d / 2.0;
                let got = g.edge_count() as f64;
                assert!(
                    (got - want).abs() <= want * 0.25 + 2.0,
                    "edge count {got} far from target {want}"
                );
            }
        }
    }

    #[test]
    fn labels_come_from_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let labels = LabelModel::zipf(4, 1.5).sampler();
        let g = random_connected_graph(&mut rng, 50, 3.0, &labels);
        assert!(g.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = sample_normal_clamped(&mut rng, 10.0, 50.0, 3, 20);
            assert!((3..=20).contains(&x));
        }
    }

    #[test]
    fn normal_clamped_tracks_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..5000)
            .map(|_| sample_normal_clamped(&mut rng, 40.0, 5.0, 1, 100) as f64)
            .sum::<f64>()
            / 5000.0;
        assert!((mean - 40.0).abs() < 1.0, "sample mean {mean}");
    }

    #[test]
    fn bfs_subgraph_connected_with_target_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let labels = LabelModel::uniform(3).sampler();
        let g = random_connected_graph(&mut rng, 40, 4.0, &labels);
        let sub = bfs_edge_subgraph(&g, 0, 8).unwrap();
        assert_eq!(sub.edge_count(), 8);
        assert!(sub.is_connected());
    }

    #[test]
    fn bfs_subgraph_caps_at_graph_size() {
        let _rng = StdRng::seed_from_u64(4);
        let g = LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2)]);
        let sub = bfs_edge_subgraph(&g, 0, 100).unwrap();
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn bfs_subgraph_isolated_start_is_none() {
        let _rng = StdRng::seed_from_u64(4);
        let g = LabeledGraph::from_parts(vec![0, 1, 2], &[(1, 2)]);
        assert!(bfs_edge_subgraph(&g, 0, 3).is_none());
    }

    #[test]
    fn walk_subgraph_connected() {
        let mut rng = StdRng::seed_from_u64(6);
        let labels = LabelModel::uniform(3).sampler();
        let g = random_connected_graph(&mut rng, 40, 4.0, &labels);
        let sub = random_walk_subgraph(&g, 5, 10, &mut rng).unwrap();
        assert!(sub.edge_count() >= 1 && sub.edge_count() <= 10);
        assert!(sub.is_connected());
    }
}
