//! Labelled undirected graph model for GraphCache.
//!
//! This crate provides the data model shared by every other GraphCache crate:
//!
//! * [`LabeledGraph`] — an immutable, CSR-encoded, vertex-labelled undirected
//!   graph, the unit of both datasets and queries (paper §3);
//! * [`GraphBuilder`] — an incremental builder that normalises edges
//!   (deduplication, sorted adjacency) before freezing;
//! * [`GraphDataset`] — a collection of graphs with summary statistics;
//! * [`io`] — a line-oriented text format compatible in spirit with the
//!   format used by GraphGrepSX/Grapes distributions;
//! * [`zipf`] — Zipf and uniform samplers used by the workload generators
//!   (paper §7.2);
//! * [`random`] — seeded random-graph construction used by the synthetic
//!   dataset generators.
//!
//! The paper (§3) models a labelled graph as `G = (V, E, l)` with a label
//! function `l : V → U`; only vertices carry labels and graphs are
//! undirected, which is exactly what this crate implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dataset;
mod error;
mod graph;
pub mod idset;
pub mod io;
pub mod random;
pub mod sizing;
pub mod zipf;

pub use builder::GraphBuilder;
pub use dataset::{DatasetStats, GraphDataset, GraphId};
pub use error::GraphError;
pub use graph::{EdgeIter, Label, LabeledGraph, NodeId};
