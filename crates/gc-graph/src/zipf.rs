//! Discrete samplers used by the workload generators (paper §7.2).
//!
//! The paper selects source graphs and start nodes either uniformly or from a
//! Zipf distribution with pdf `p(x) = x^{-α} / ζ(α)` over ranks `1..=n`;
//! defaults are α = 1.4, with 1.1 and 1.7 used for the skew sweep (Fig. 7).

use rand::Rng;

/// A Zipf(α) sampler over the finite domain `{0, 1, …, n-1}` (rank 1 maps to
/// index 0, the most popular item).
///
/// Sampling is by inversion of a precomputed CDF (O(log n) per draw). The
/// workload generators draw from domains of at most a few hundred thousand
/// items, so the O(n) table is negligible.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with skew `alpha > 0`.
    ///
    /// # Panics
    /// If `n == 0` or `alpha` is not finite and positive.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Zipf alpha must be positive and finite, got {alpha}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point drift so a draw of 1.0-ε always lands.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Domain size `n`.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single element.
    pub fn is_empty(&self) -> bool {
        false // the constructor rejects n == 0
    }

    /// Draws an index in `0..n`; index 0 is the most probable.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of index `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// How workload generators pick items from an ordered domain: uniformly or
/// Zipf-skewed ("U" / "Z" in the paper's workload names).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selector {
    /// Uniform over the domain.
    Uniform,
    /// Zipf with the given α; lower indices are more popular.
    Zipf(f64),
}

impl Selector {
    /// Builds a reusable sampler for a domain of `n` items.
    pub fn build(self, n: usize) -> DomainSampler {
        match self {
            Selector::Uniform => DomainSampler::Uniform { n },
            Selector::Zipf(alpha) => DomainSampler::Zipf(ZipfSampler::new(n, alpha)),
        }
    }

    /// Single-letter code used in workload names ("U"/"Z").
    pub fn code(self) -> char {
        match self {
            Selector::Uniform => 'U',
            Selector::Zipf(_) => 'Z',
        }
    }
}

/// A materialised sampler for a fixed-size domain; see [`Selector::build`].
#[derive(Debug, Clone)]
pub enum DomainSampler {
    /// Uniform over `0..n`.
    Uniform {
        /// Domain size.
        n: usize,
    },
    /// Zipf-distributed over `0..n`.
    Zipf(ZipfSampler),
}

impl DomainSampler {
    /// Draws an index from the domain.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        match self {
            DomainSampler::Uniform { n } => rng.gen_range(0..*n),
            DomainSampler::Zipf(z) => z.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.4);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotonically_decreasing() {
        let z = ZipfSampler::new(50, 1.1);
        for i in 1..50 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = ZipfSampler::new(1000, 1.4);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            let i = z.sample(&mut rng);
            assert!(i < 1000);
            counts[i] += 1;
        }
        // Rank 1 should dominate, and the head should hold most of the mass.
        assert!(counts[0] > counts[10]);
        let head: usize = counts[..10].iter().sum();
        assert!(head > 10_000, "head mass {head} too small for alpha=1.4");
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(21);
        let head_mass = |alpha: f64, rng: &mut StdRng| {
            let z = ZipfSampler::new(500, alpha);
            (0..10_000).filter(|_| z.sample(rng) == 0).count()
        };
        let low = head_mass(1.1, &mut rng);
        let high = head_mass(1.7, &mut rng);
        assert!(high > low, "alpha=1.7 head {high} <= alpha=1.1 head {low}");
    }

    #[test]
    fn single_item_domain() {
        let z = ZipfSampler::new(1, 1.4);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_panics() {
        ZipfSampler::new(0, 1.4);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        ZipfSampler::new(5, -1.0);
    }

    #[test]
    fn selector_codes() {
        assert_eq!(Selector::Uniform.code(), 'U');
        assert_eq!(Selector::Zipf(1.4).code(), 'Z');
    }

    #[test]
    fn uniform_selector_covers_domain() {
        let s = Selector::Uniform.build(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
