//! The daemon: listeners, sessions, admission permits, graceful drain.
//!
//! One [`Server`] owns one shared [`GraphCache`] (a cheap-to-clone
//! service handle) and any number of listeners — TCP, unix socket, or
//! both. Each accepted connection becomes a *session*: a thread that
//! decodes frames with a [`FrameReader`],
//! executes `QUERY` frames against the shared cache, and tallies every
//! completed record into both its own and the global
//! [`RunCounters`] (via `RunCounters::add_record`, so `STATS` output uses
//! the exact counter names the benchmark harness serializes).
//!
//! # Admission under load
//!
//! Query admission is a fixed pool of permits (`max_inflight`, default =
//! the cache's batch thread count). A `QUERY` frame that cannot take a
//! permit is answered with a typed `BUSY` frame and **not executed** —
//! the client owns the retry, the server never queues unboundedly.
//! Sessions read frames strictly in order, so one session holds at most
//! one execution permit at a time; the pool bounds *cross-session*
//! concurrency. The `HOLD`/`RELEASE` frames take/return one permit from
//! the same pool without running a query, which gives operators a quiesce
//! lever and gives tests a deterministic way to saturate the pool (no
//! sleeps, no timing assumptions). A held permit is returned when the
//! session disconnects.
//!
//! # Graceful drain
//!
//! `SHUTDOWN` (any session), SIGTERM, or SIGINT set a draining flag. The
//! accept loop stops accepting; every session finishes the frame it is
//! executing, sends `BYE reason=draining` (or `reason=shutdown` to the
//! requester) and closes; [`Server::run`] waits up to `drain_timeout` for
//! sessions to unwind, optionally persists the cache snapshot
//! (`persist_on_exit`), and returns. In-flight queries always complete —
//! drain interrupts the protocol between frames, never a running query.

use crate::proto::{
    encode_response, parse_request, FrameEvent, FrameReader, ProtoError, QueryFrame, Request,
    Response, StatsScope, PROTO_VERSION,
};
use crate::router::{PeerIdentity, Ring};
use gc_core::{GraphCache, QueryRequest, RunCounters};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long sessions sleep between polls of their read timeout — the
/// latency bound on noticing a drain request mid-idle.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Why the daemon stopped abnormally. Typed so callers can distinguish a
/// transport failure from a drain-time snapshot that did not land — the
/// latter means the service ran fine but its final state was **not**
/// persisted, which deserves a different exit path than an accept error.
#[derive(Debug)]
pub enum ServeError {
    /// A listener or transport error in the accept loop.
    Io(std::io::Error),
    /// The drain-time `persist_on_exit` snapshot failed; the cache served
    /// correctly but its final state is only as durable as the last
    /// committed generation.
    ExitSnapshot {
        /// The snapshot directory the save targeted.
        dir: PathBuf,
        /// The underlying staged-write failure.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::ExitSnapshot { dir, source } => {
                write!(f, "exit snapshot to {dir:?} failed: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::ExitSnapshot { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// SIGTERM/SIGINT handling. `std` exposes no signal API and the offline
/// build has no `libc` crate, so this is a minimal hand-rolled binding to
/// the one function needed: `signal(2)`, which std's runtime already
/// links. The handler only stores to an atomic — async-signal-safe.
#[allow(unsafe_code)]
pub(crate) mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler on SIGTERM/SIGINT; polled by the accept loop.
    pub(crate) static TERMINATE: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Routes SIGTERM and SIGINT to the drain flag.
    pub(crate) fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Daemon configuration — the knobs behind `gc serve`'s flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (`host:port`), if any.
    pub listen: Option<String>,
    /// Unix socket path, if any. A stale socket file at this path is
    /// removed before binding (the daemon owns its path).
    pub unix: Option<PathBuf>,
    /// Maximum concurrent sessions; further connections are refused with
    /// `ERR code=max-sessions`.
    pub max_sessions: usize,
    /// Size of the admission-permit pool; `0` sizes it from the cache's
    /// batch thread count.
    pub max_inflight: usize,
    /// How long [`Server::run`] waits for sessions to unwind after drain
    /// starts before giving up on stragglers.
    pub drain_timeout: Duration,
    /// Persist the cache snapshot to this directory after drain.
    pub persist_on_exit: Option<PathBuf>,
    /// Also persist the snapshot periodically while serving (into the
    /// `persist_on_exit` directory), so a `kill -9` loses at most this
    /// much history. Saves run from the accept loop through the atomic
    /// generational writer; queries keep flowing while one is in
    /// progress. `None` = exit-time snapshot only.
    pub snapshot_every: Option<Duration>,
    /// On-disk representation for `persist_on_exit` saves (text or the
    /// binary arena snapshot); restores auto-detect, so either works with
    /// `--restore`.
    pub persist_format: gc_core::PersistFormat,
    /// Install SIGTERM/SIGINT handlers that trigger graceful drain (the
    /// CLI daemon sets this; in-process test servers leave it off).
    pub handle_signals: bool,
    /// Serve as routed peer `index` of a `total`-peer fleet: `HELLO`
    /// advertises the identity, `PROBE` replies are filtered to the
    /// consistent-hash slice of the fingerprint space this peer owns, and
    /// `QUERY`/`PROBE`/`ROUTE` require the session to announce
    /// `VERSION proto>=4` first (`None` = standalone daemon, no gate).
    pub peer: Option<PeerIdentity>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: None,
            unix: None,
            max_sessions: 64,
            max_inflight: 0,
            drain_timeout: Duration::from_secs(10),
            persist_on_exit: None,
            snapshot_every: None,
            persist_format: gc_core::PersistFormat::default(),
            handle_signals: false,
            peer: None,
        }
    }
}

/// A bidirectional connection over either transport.
#[derive(Debug)]
pub(crate) enum Conn {
    /// TCP client connection.
    Tcp(TcpStream),
    /// Unix-socket client connection.
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// State shared by the accept loop and every session thread.
struct Shared {
    cache: GraphCache,
    max_sessions: usize,
    max_inflight: usize,
    /// Admission permits currently taken (by executing queries and by
    /// `HOLD`ing sessions).
    inflight: AtomicUsize,
    /// Live session count.
    sessions: AtomicUsize,
    sessions_total: AtomicU64,
    next_session: AtomicU64,
    busy_rejections: AtomicU64,
    proto_errors: AtomicU64,
    draining: AtomicBool,
    /// Global query counters, accumulated record-by-record.
    global: Mutex<RunCounters>,
    persist_on_exit: Option<PathBuf>,
    persist_format: gc_core::PersistFormat,
    /// Snapshot generations committed while serving (periodic saves).
    snapshots_written: AtomicU64,
    /// Routed-peer identity, when serving as part of a fleet.
    peer: Option<PeerIdentity>,
    /// The fleet's consistent-hash ring (present iff `peer` is).
    ring: Option<Ring>,
}

impl Shared {
    /// Takes one admission permit, or reports the pool saturated.
    fn try_acquire(&self) -> Result<(), usize> {
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            if cur >= self.max_inflight {
                return Err(cur);
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::TERMINATE.load(Ordering::SeqCst)
    }

    /// The `STATS` payload: query counters first (harness naming), then
    /// maintenance + cache shape (the same extension order as the
    /// harness runner), then serve-level gauges.
    fn global_stats(&self, settle: bool) -> Vec<(String, u64)> {
        if settle {
            self.cache.flush_pending();
        }
        let run = *self.global.lock().expect("stats lock");
        let mut out: Vec<(String, u64)> = run
            .deterministic_counters()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.extend(
            self.cache
                .maint_stats()
                .deterministic_counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v)),
        );
        out.push(("cache_entries".into(), self.cache.cache_len() as u64));
        out.push(("memory_bytes".into(), self.cache.memory_bytes() as u64));
        out.push((
            "sessions_open".into(),
            self.sessions.load(Ordering::SeqCst) as u64,
        ));
        out.push((
            "sessions_total".into(),
            self.sessions_total.load(Ordering::SeqCst),
        ));
        out.push((
            "inflight".into(),
            self.inflight.load(Ordering::SeqCst) as u64,
        ));
        out.push(("max_inflight".into(), self.max_inflight as u64));
        out.push((
            "busy_rejections".into(),
            self.busy_rejections.load(Ordering::SeqCst),
        ));
        out.push((
            "proto_errors".into(),
            self.proto_errors.load(Ordering::SeqCst),
        ));
        out.push((
            "snapshots_written".into(),
            self.snapshots_written.load(Ordering::SeqCst),
        ));
        out.push((
            "recovered_generation".into(),
            self.cache.recovered_generation().unwrap_or(0),
        ));
        out
    }
}

/// One bound listener of either flavour, switched to non-blocking so the
/// accept loop can interleave listeners and poll the drain flag.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    /// Accepts one pending connection, if any (`None` when the accept
    /// would block).
    fn try_accept(&self) -> std::io::Result<Option<Conn>> {
        let conn = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(Conn::Tcp(s)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Some(Conn::Unix(s)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        Ok(conn)
    }
}

/// A bound-but-not-yet-running daemon. Binding and running are separate
/// steps so callers (tests, the bench driver) can connect clients the
/// moment [`Server::bind`] returns — connections queue in the listen
/// backlog until [`Server::run`] starts accepting.
///
/// ```
/// use gc_core::GraphCache;
/// use gc_graph::{GraphDataset, LabeledGraph};
/// use gc_methods::MethodBuilder;
/// use gc_server::{ServeConfig, Server};
///
/// let dataset = GraphDataset::new(vec![LabeledGraph::from_parts(vec![0, 1], &[(0, 1)])]);
/// let cache = GraphCache::builder().build(MethodBuilder::ggsx().build(&dataset));
///
/// let sock = std::env::temp_dir().join(format!("gc-serve-doc-{}.sock", std::process::id()));
/// let cfg = ServeConfig { unix: Some(sock.clone()), ..ServeConfig::default() };
/// let server = Server::bind(cache, cfg)?;
/// let handle = server.shutdown_handle();
///
/// // `run()` blocks until drain; a real deployment parks the main thread
/// // here and drains on SIGTERM (`handle_signals: true`).
/// handle.shutdown();
/// server.run().expect("clean drain");
/// assert!(!sock.exists(), "socket unlinked on exit");
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    shared: Arc<Shared>,
    listeners: Vec<Listener>,
    drain_timeout: Duration,
    snapshot_every: Option<Duration>,
    handle_signals: bool,
    /// Socket file to unlink on exit.
    unix_path: Option<PathBuf>,
    tcp_addr: Option<std::net::SocketAddr>,
}

impl Server {
    /// Binds every configured listener. Fails with a usage-shaped error
    /// when no listener is configured, and with the bind error otherwise.
    pub fn bind(cache: GraphCache, cfg: ServeConfig) -> std::io::Result<Server> {
        if cfg.listen.is_none() && cfg.unix.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no listener configured (need --listen and/or --unix)",
            ));
        }
        let max_inflight = if cfg.max_inflight == 0 {
            cache.batch_threads()
        } else {
            cfg.max_inflight
        };
        let mut listeners = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &cfg.listen {
            let l = TcpListener::bind(addr)?;
            tcp_addr = Some(l.local_addr()?);
            l.set_nonblocking(true)?;
            listeners.push(Listener::Tcp(l));
        }
        let mut unix_path = None;
        if let Some(path) = &cfg.unix {
            // The daemon owns its socket path, but only when no other
            // daemon is serving it: probe a leftover socket file with a
            // connect before unlinking. A live server answers the connect
            // (bind fails with AddrInUse instead of silently stealing the
            // path); a dead one refuses, which marks the file stale — the
            // residue of a crashed or killed daemon — and safe to remove.
            if path.exists() {
                match UnixStream::connect(path) {
                    Ok(_probe) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("socket {} is served by a live daemon", path.display()),
                        ));
                    }
                    Err(_) => {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            listeners.push(Listener::Unix(l));
            unix_path = Some(path.clone());
        }
        Ok(Server {
            shared: Arc::new(Shared {
                cache,
                max_sessions: cfg.max_sessions.max(1),
                max_inflight: max_inflight.max(1),
                inflight: AtomicUsize::new(0),
                sessions: AtomicUsize::new(0),
                sessions_total: AtomicU64::new(0),
                next_session: AtomicU64::new(1),
                busy_rejections: AtomicU64::new(0),
                proto_errors: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                global: Mutex::new(RunCounters::default()),
                persist_on_exit: cfg.persist_on_exit.clone(),
                persist_format: cfg.persist_format,
                snapshots_written: AtomicU64::new(0),
                peer: cfg.peer,
                ring: cfg.peer.map(|p| Ring::new(p.total)),
            }),
            listeners,
            drain_timeout: cfg.drain_timeout,
            snapshot_every: cfg.snapshot_every,
            handle_signals: cfg.handle_signals,
            unix_path,
            tcp_addr,
        })
    }

    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.tcp_addr
    }

    /// A handle that can request drain from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until drain, then waits for sessions to
    /// unwind and optionally persists the snapshot. Returns once the
    /// daemon is fully stopped. A drain-time snapshot that fails is a
    /// typed [`ServeError::ExitSnapshot`], never a silent drop — the
    /// operator must learn the final state did not land.
    pub fn run(self) -> Result<(), ServeError> {
        if self.handle_signals {
            signal::install();
        }
        let mut workers = Vec::new();
        let mut last_snapshot = Instant::now();
        while !self.shared.draining() {
            let mut accepted = false;
            for listener in &self.listeners {
                while let Some(conn) = listener.try_accept()? {
                    accepted = true;
                    self.spawn_session(conn, &mut workers);
                }
            }
            // Reap finished session threads so the join list stays small
            // on long-lived daemons.
            workers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
            // Periodic background snapshot, from the accept loop so no
            // session thread ever blocks on disk. The staged writer makes
            // a kill -9 mid-save harmless: the previous generation stays
            // committed until the new MANIFEST renames into place.
            if let (Some(every), Some(dir)) = (self.snapshot_every, &self.shared.persist_on_exit) {
                if last_snapshot.elapsed() >= every {
                    match self
                        .shared
                        .cache
                        .save_with_format(dir, self.shared.persist_format)
                    {
                        Ok(()) => {
                            self.shared.snapshots_written.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            // A failed periodic save degrades durability,
                            // not service: log and keep serving (the exit
                            // snapshot still gets its typed error).
                            eprintln!("gc serve: periodic snapshot to {dir:?} failed: {e}");
                        }
                    }
                    last_snapshot = Instant::now();
                }
            }
            if !accepted {
                std::thread::sleep(POLL_INTERVAL);
            }
        }
        // Drain: stop accepting (drop the listeners so new connects fail
        // fast), then wait for in-flight sessions to finish their work.
        drop(self.listeners);
        let deadline = Instant::now() + self.drain_timeout;
        while self.shared.sessions.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL_INTERVAL);
        }
        for handle in workers {
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
        let exit_snapshot = self.shared.persist_on_exit.as_ref().map(|dir| {
            self.shared
                .cache
                .save_with_format(dir, self.shared.persist_format)
                .map_err(|source| ServeError::ExitSnapshot {
                    dir: dir.clone(),
                    source,
                })
        });
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        exit_snapshot.transpose()?;
        Ok(())
    }

    fn spawn_session(&self, mut conn: Conn, workers: &mut Vec<std::thread::JoinHandle<()>>) {
        let shared = Arc::clone(&self.shared);
        if shared.sessions.load(Ordering::SeqCst) >= shared.max_sessions {
            let refuse = Response::Err {
                code: "max-sessions".into(),
                msg: format!("session limit {} reached", shared.max_sessions),
            };
            let _ = send(&mut conn, &refuse);
            return;
        }
        shared.sessions.fetch_add(1, Ordering::SeqCst);
        shared.sessions_total.fetch_add(1, Ordering::SeqCst);
        let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
        workers.push(std::thread::spawn(move || {
            Session::new(shared.clone(), id).serve(conn);
            shared.sessions.fetch_sub(1, Ordering::SeqCst);
        }));
    }
}

/// Requests graceful drain from outside the protocol (tests, embedders).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Flips the drain flag, as `SHUTDOWN`/SIGTERM would.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

fn send(conn: &mut Conn, resp: &Response) -> std::io::Result<()> {
    let mut line = encode_response(resp);
    line.push('\n');
    conn.write_all(line.as_bytes())?;
    conn.flush()
}

/// Per-connection protocol state.
struct Session {
    shared: Arc<Shared>,
    id: u64,
    counters: RunCounters,
    /// This session currently holds one quiesce permit (`HOLD`).
    holding: bool,
    /// Highest protocol version the client announced via `VERSION`
    /// (`None` until it does). Routed peers refuse query traffic from
    /// sessions that have not announced proto >= 4.
    announced: Option<u64>,
}

impl Session {
    fn new(shared: Arc<Shared>, id: u64) -> Session {
        Session {
            shared,
            id,
            counters: RunCounters::default(),
            holding: false,
            announced: None,
        }
    }

    /// The session loop: greet, then decode and answer frames until the
    /// peer leaves, a transport error, or drain.
    fn serve(&mut self, mut conn: Conn) {
        // Short read timeouts turn blocked reads into `Idle` events so
        // the loop can notice drain while the peer is quiet.
        if conn.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        let hello = Response::Hello {
            proto: PROTO_VERSION,
            session: self.id,
            max_inflight: self.shared.max_inflight as u64,
            peer: self.shared.peer.map(|p| (p.index, p.total)),
        };
        if send(&mut conn, &hello).is_err() {
            return;
        }
        let mut reader = FrameReader::new();
        loop {
            if self.shared.draining() {
                self.drain_close(&mut conn, &mut reader);
                break;
            }
            let line = match reader.poll_frame(&mut conn) {
                Ok(FrameEvent::Frame(line)) => line,
                Ok(FrameEvent::Idle) => continue,
                Ok(FrameEvent::Closed) => break,
                Err(err @ ProtoError::TooLarge { .. }) => {
                    // The stream position is unrecoverable past an
                    // oversized line; say why, then hang up.
                    self.shared.proto_errors.fetch_add(1, Ordering::SeqCst);
                    let _ = send(
                        &mut conn,
                        &Response::Err {
                            code: err.code().into(),
                            msg: err.to_string(),
                        },
                    );
                    break;
                }
                Err(err @ ProtoError::Malformed { .. }) => {
                    // Invalid UTF-8: the offending line was consumed, so
                    // framing is intact — reply and keep serving.
                    self.shared.proto_errors.fetch_add(1, Ordering::SeqCst);
                    let _ = send(
                        &mut conn,
                        &Response::Err {
                            code: err.code().into(),
                            msg: err.to_string(),
                        },
                    );
                    continue;
                }
                Err(ProtoError::Io(_)) => break,
            };
            match parse_request(&line) {
                Err(err) => {
                    self.shared.proto_errors.fetch_add(1, Ordering::SeqCst);
                    let reply = Response::Err {
                        code: err.code().into(),
                        msg: err.to_string(),
                    };
                    if send(&mut conn, &reply).is_err() {
                        break;
                    }
                }
                Ok(req) => {
                    let done = matches!(req, Request::Quit | Request::Shutdown);
                    if self.answer(&mut conn, req).is_err() || done {
                        break;
                    }
                }
            }
        }
        if self.holding {
            self.shared.release();
            self.holding = false;
        }
    }

    /// Drain-time goodbye: answer frames the client already has in flight
    /// before saying BYE, so `gc ctl stats` racing a drain still gets its
    /// STATS reply. The sweep is bounded (about two poll intervals of
    /// quiet) and stops early on Quit/Shutdown, which send their own BYE.
    fn drain_close(&mut self, conn: &mut Conn, reader: &mut FrameReader) {
        let deadline = Instant::now() + POLL_INTERVAL * 2;
        while Instant::now() < deadline {
            match reader.poll_frame(conn) {
                Ok(FrameEvent::Frame(line)) => match parse_request(&line) {
                    Ok(req) => {
                        let said_bye = matches!(req, Request::Quit | Request::Shutdown);
                        if self.answer(conn, req).is_err() || said_bye {
                            return;
                        }
                    }
                    Err(err) => {
                        self.shared.proto_errors.fetch_add(1, Ordering::SeqCst);
                        let reply = Response::Err {
                            code: err.code().into(),
                            msg: err.to_string(),
                        };
                        if send(conn, &reply).is_err() {
                            return;
                        }
                    }
                },
                Ok(FrameEvent::Idle) => continue,
                Ok(FrameEvent::Closed) | Err(_) => return,
            }
        }
        let _ = send(
            conn,
            &Response::Bye {
                reason: "draining".into(),
            },
        );
    }

    /// Routed peers refuse query traffic from sessions that have not
    /// announced a compatible protocol: a proto-3 client would silently
    /// ignore `allow=` restrictions and desynchronise the fleet.
    fn version_refusal(&self, what: &str) -> Option<Response> {
        self.shared.peer?;
        match self.announced {
            Some(proto) if proto >= 4 => None,
            Some(proto) => Some(Response::Err {
                code: "version".into(),
                msg: format!(
                    "routed peer requires proto>=4 for {what}; session announced proto {proto}"
                ),
            }),
            None => Some(Response::Err {
                code: "version".into(),
                msg: format!("routed peer requires `VERSION proto=4` before {what}"),
            }),
        }
    }

    fn answer(&mut self, conn: &mut Conn, req: Request) -> std::io::Result<()> {
        match req {
            Request::Ping(token) => send(conn, &Response::Pong(token)),
            Request::Version { proto } => {
                self.announced = Some(proto);
                send(
                    conn,
                    &Response::Version {
                        proto: proto.min(PROTO_VERSION),
                    },
                )
            }
            Request::Query(frame) => {
                if let Some(refusal) = self.version_refusal("QUERY") {
                    return send(conn, &refusal);
                }
                let reply = self.run_query(frame, false);
                send(conn, &reply)
            }
            Request::Probe { id, graph, kind } => {
                if let Some(refusal) = self.version_refusal("PROBE") {
                    return send(conn, &refusal);
                }
                let pairs = self.shared.cache.probe_candidates(&graph, kind);
                let cands: Vec<u64> = match (self.shared.peer, &self.shared.ring) {
                    // A fleet peer reports only the candidates whose
                    // entry fingerprints fall in its ring slice; the
                    // router unions the slices back together.
                    (Some(peer), Some(ring)) => pairs
                        .into_iter()
                        .filter(|&(_, fp)| ring.owner(fp) == peer.index)
                        .map(|(serial, _)| serial)
                        .collect(),
                    _ => pairs.into_iter().map(|(serial, _)| serial).collect(),
                };
                send(conn, &Response::Cands { id, cands })
            }
            Request::Route(frame) => {
                if let Some(refusal) = self.version_refusal("ROUTE") {
                    return send(conn, &refusal);
                }
                let reply = self.run_query(frame, true);
                send(conn, &reply)
            }
            Request::Stats(StatsScope::Mine) => {
                let counters: Vec<(String, u64)> = self
                    .counters
                    .deterministic_counters()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                send(conn, &Response::Stats(counters))
            }
            Request::Stats(scope) => {
                let settle = scope == StatsScope::Settle;
                send(conn, &Response::Stats(self.shared.global_stats(settle)))
            }
            Request::Hold => {
                if self.holding {
                    return send(
                        conn,
                        &Response::Err {
                            code: "already-holding".into(),
                            msg: "this session already holds a permit".into(),
                        },
                    );
                }
                match self.shared.try_acquire() {
                    Ok(()) => {
                        self.holding = true;
                        send(conn, &Response::Held)
                    }
                    Err(inflight) => {
                        self.shared.busy_rejections.fetch_add(1, Ordering::SeqCst);
                        send(
                            conn,
                            &Response::Busy {
                                id: 0,
                                inflight: inflight as u64,
                                max: self.shared.max_inflight as u64,
                            },
                        )
                    }
                }
            }
            Request::Release => {
                if !self.holding {
                    return send(
                        conn,
                        &Response::Err {
                            code: "not-holding".into(),
                            msg: "RELEASE without a matching HOLD".into(),
                        },
                    );
                }
                self.shared.release();
                self.holding = false;
                send(conn, &Response::Released)
            }
            Request::Shutdown => {
                self.shared.draining.store(true, Ordering::SeqCst);
                send(
                    conn,
                    &Response::Bye {
                        reason: "shutdown".into(),
                    },
                )
            }
            Request::Quit => send(
                conn,
                &Response::Bye {
                    reason: "quit".into(),
                },
            ),
        }
    }

    /// Admission + execution of one `QUERY` or `ROUTE` frame. A routed
    /// apply (`routed = true`) executes identically — every replica must
    /// advance its serial counter and cache state in lockstep — but
    /// answers with the compact `ROUTED id= serial=` acknowledgement
    /// instead of a full RESULT.
    fn run_query(&mut self, frame: QueryFrame, routed: bool) -> Response {
        if let Err(inflight) = self.shared.try_acquire() {
            self.shared.busy_rejections.fetch_add(1, Ordering::SeqCst);
            return Response::Busy {
                id: frame.id,
                inflight: inflight as u64,
                max: self.shared.max_inflight as u64,
            };
        }
        let mut request = QueryRequest::new(frame.graph).tag(frame.id);
        if let Some(kind) = frame.kind {
            request = request.kind(kind);
        }
        if let Some(budget) = frame.verify_budget {
            request = request.verify_budget(budget);
        }
        if let Some(max_hits) = frame.max_hits {
            request = request.max_hits(max_hits as usize);
        }
        if let Some(ms) = frame.timeout_ms {
            request = request.timeout_ms(ms);
        }
        if let Some(allow) = frame.allow {
            request = request.allow_serials(allow);
        }
        request = request.bypass_cache(frame.bypass);
        let response = self.shared.cache.execute(request);
        self.shared.release();
        self.counters.add_record(&response.result.record);
        self.shared
            .global
            .lock()
            .expect("stats lock")
            .add_record(&response.result.record);
        // A deadline abort is a typed error, not a RESULT: the partial
        // (empty) answer must never be mistaken for the query's answer.
        // The record was still tallied above, so `deadline_aborts` counts
        // it in STATS.
        if response.result.record.deadline_exceeded {
            return Response::Err {
                code: "deadline".into(),
                msg: format!(
                    "query id={} exceeded its {}ms deadline",
                    frame.id,
                    frame.timeout_ms.unwrap_or(0)
                ),
            };
        }
        if routed {
            return Response::Routed {
                id: frame.id,
                serial: response.result.serial,
            };
        }
        Response::Result(crate::proto::ResultFrame {
            id: frame.id,
            serial: response.result.serial,
            answer: response.result.answer.iter().map(|g| g.0).collect(),
            record: response.result.record,
        })
    }
}
