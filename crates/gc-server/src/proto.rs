//! The `gc serve` wire protocol: hand-rolled, line-delimited text frames.
//!
//! The build environment is fully offline, so the protocol follows the
//! same idiom as the harness's JSON writer: no external dependencies, a
//! small hand-written encoder/parser pair, and round-trip fidelity proven
//! by tests. Every frame is one UTF-8 line terminated by `\n` (a trailing
//! `\r` is tolerated), capped at [`MAX_FRAME_BYTES`]; blank lines are
//! ignored. A frame is a keyword followed by `key=value` tokens:
//!
//! ```text
//! client → server                      server → client
//! ---------------                      ---------------
//! PING [token=T]                       HELLO proto=4 session=N max_inflight=N
//! VERSION proto=N                            [peer=I/N]
//! QUERY id=N graph=G [kind=sub|super]  VERSION proto=N
//!       [budget=N] [max_hits=N]        PONG [token=T]
//!       [bypass=1] [timeout=N]         RESULT id=N serial=N answers=N ids=L …
//!       [allow=L]                      BUSY id=N inflight=N max=N
//! PROBE id=N graph=G [kind=sub|super]  CANDS id=N cands=L
//! ROUTE id=N graph=G [… QUERY tokens]  ROUTED id=N serial=N
//! STATS [scope=mine|settle]            STATS k=v …
//! HOLD                                 HELD
//! RELEASE                              RELEASED
//! SHUTDOWN                             BYE reason=R
//! QUIT                                 ERR code=C msg="…"
//! ```
//!
//! * `graph=G` encodes a labelled graph inline as
//!   `<nodes>:<label,label,…>:<u-v,u-v,…>` (empty sections for zero nodes
//!   or edges), exactly reconstructing the graph on the other side;
//! * `ids=L` is the answer id list (`-` when empty);
//! * the trailing tokens of a `RESULT` frame are the
//!   [`QueryRecord::deterministic_fields`] names — replaying them through
//!   [`QueryRecord::set_deterministic_field`] rebuilds a record whose
//!   [`gc_core::RunCounters`] contribution is byte-identical to the
//!   server's, which is what makes served counters comparable to
//!   in-process `run_batch` counters. Since proto 2 this includes the
//!   fragment-cache fields `fragment_probes` (fragments of the query
//!   probed against the fragment store), `fragment_hits` (probes that
//!   found a cached fragment) and `fragment_pruned` (candidates removed
//!   by occurrence-set intersection);
//! * a `STATS` reply's tokens are counter `name=value` pairs; with the
//!   fragment layer the global scope carries `fragments_built` /
//!   `fragments_evicted` (fragment-store upkeep) and folds the fragment
//!   store into `memory_bytes`. All three stay present — as zeros — when
//!   the layer is off, so counter schemas never depend on configuration;
//! * `msg="…"` is a quoted string (escapes: `\"`, `\\`, `\n`, `\r`,
//!   `\t`) and is always the last token of its frame.
//!
//! Malformed input of any kind — unknown keywords, missing keys, garbage
//! bytes, truncated or oversized frames — yields a typed [`ProtoError`],
//! never a panic; the session replies `ERR` and stays usable (framing
//! re-synchronises at the next newline) except after an oversized frame,
//! where the stream position is unrecoverable and the connection closes.

use gc_core::QueryRecord;
use gc_graph::LabeledGraph;
use gc_methods::QueryKind;
use std::fmt::Write as _;
use std::io::Read;

/// Protocol version announced in the `HELLO` greeting. Bump on any change
/// to frame keywords, token names, or their meaning.
///
/// History: 1 — initial protocol; 2 — `RESULT` frames carry the
/// fragment-cache fields (`fragment_probes`, `fragment_hits`,
/// `fragment_pruned`) and global `STATS` replies the fragment upkeep
/// counters (`fragments_built`, `fragments_evicted`); 3 — `QUERY` frames
/// accept a `timeout=` token (per-query deadline in milliseconds, expiry
/// answered with `ERR code=deadline`), `RESULT` frames carry the
/// `deadline` field, and global `STATS` replies add `deadline_aborts`,
/// `snapshots_written` and `recovered_generation`; 4 — the routed-peer
/// fleet: `HELLO` advertises a `peer=I/N` identity on routed peers,
/// `VERSION proto=N` announces the client's protocol level (a routed peer
/// answers `QUERY`/`PROBE`/`ROUTE` from un-announced or pre-4 sessions
/// with `ERR code=version`), `PROBE`/`CANDS` enumerate slice-filtered
/// candidate serials, `ROUTE`/`ROUTED` apply a query to a replica for
/// deterministic lockstep, and `QUERY` accepts an `allow=` serial list
/// restricting the hit-verification sweep.
pub const PROTO_VERSION: u64 = 4;

/// Hard cap on one frame's byte length (newline excluded). A frame beyond
/// the cap is a [`ProtoError::TooLarge`]; since the remainder of the
/// oversized line cannot be skipped reliably, connections close after it.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Sanity cap on wire-decoded graph size (nodes and edges each) — a typed
/// error beats an attempted multi-gigabyte allocation.
pub const MAX_GRAPH_ITEMS: usize = 1 << 20;

/// A protocol failure. Every variant carries a stable `code` slug used in
/// `ERR` frames, so clients can branch without string-matching messages.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (socket closed mid-frame, I/O error).
    Io(std::io::Error),
    /// A frame exceeded [`MAX_FRAME_BYTES`]; the connection must close.
    TooLarge {
        /// The configured frame cap that was exceeded.
        limit: usize,
    },
    /// The frame was syntactically or semantically malformed.
    Malformed {
        /// What was wrong, for the `ERR` message.
        what: String,
    },
}

impl ProtoError {
    fn malformed(what: impl Into<String>) -> ProtoError {
        ProtoError::Malformed { what: what.into() }
    }

    /// The stable error-code slug for `ERR code=…` frames.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Io(_) => "io",
            ProtoError::TooLarge { .. } => "too-large",
            ProtoError::Malformed { .. } => "bad-frame",
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::TooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            ProtoError::Malformed { what } => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// `STATS` request scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsScope {
    /// Global counters, as currently accumulated.
    #[default]
    Global,
    /// The requesting session's own counters.
    Mine,
    /// Global counters after folding pending maintenance into the cache
    /// (`flush_pending`), so the maintenance/cache-shape counters describe
    /// a settled store — what `gc bench --serve` compares.
    Settle,
}

impl StatsScope {
    fn name(self) -> Option<&'static str> {
        match self {
            StatsScope::Global => None,
            StatsScope::Mine => Some("mine"),
            StatsScope::Settle => Some("settle"),
        }
    }
}

/// One query submission on the wire — the protocol's mirror of
/// [`gc_core::QueryRequest`] (the graph travels by value; per-query
/// overrides are optional tokens).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFrame {
    /// Client-chosen correlation id, echoed on `RESULT`/`BUSY`.
    pub id: u64,
    /// The query graph.
    pub graph: LabeledGraph,
    /// Per-query direction override.
    pub kind: Option<QueryKind>,
    /// Per-query verification-budget override.
    pub verify_budget: Option<u64>,
    /// Per-query hit-budget override.
    pub max_hits: Option<u64>,
    /// Route around the cache (baseline execution).
    pub bypass: bool,
    /// Per-query deadline in milliseconds; the server answers expiry with
    /// `ERR code=deadline`.
    pub timeout_ms: Option<u64>,
    /// Restricts the hit-verification sweep to these candidate serials
    /// (the router's merged `CANDS` slices). `None` = no restriction.
    pub allow: Option<Vec<u64>>,
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the optional token is echoed back.
    Ping(Option<String>),
    /// Announce the client's protocol level (proto 4+). Routed peers
    /// require an announcement of at least 4 before serving
    /// `QUERY`/`PROBE`/`ROUTE`; everywhere else it is informational.
    Version {
        /// The highest protocol version the client speaks.
        proto: u64,
    },
    /// Execute a query.
    Query(QueryFrame),
    /// Enumerate the candidate serials the hit sweep would consider for
    /// this graph — a pure read. A routed peer answers only the slice of
    /// the fingerprint space it owns.
    Probe {
        /// Client-chosen correlation id, echoed on `CANDS`.
        id: u64,
        /// The query graph.
        graph: LabeledGraph,
        /// Per-query direction override.
        kind: Option<QueryKind>,
    },
    /// Apply a query to this replica for deterministic lockstep: execute
    /// it exactly like `QUERY` (same admission, maintenance and serial
    /// consumption) but answer with the compact `ROUTED` frame instead of
    /// a full `RESULT`.
    Route(QueryFrame),
    /// Read counters.
    Stats(StatsScope),
    /// Take one admission permit out of the pool (operator quiesce) until
    /// `RELEASE` or disconnect.
    Hold,
    /// Return the permit taken by `HOLD`.
    Release,
    /// Begin graceful drain: stop accepting, finish in-flight queries,
    /// close every session, optionally persist, exit.
    Shutdown,
    /// Close this session only.
    Quit,
}

/// The outcome of one served query: answer ids plus the deterministic
/// slice of the [`QueryRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFrame {
    /// Echo of the request's correlation id.
    pub id: u64,
    /// The serial the cache assigned to this query.
    pub serial: u64,
    /// Answer: matching dataset graph ids.
    pub answer: Vec<u32>,
    /// The deterministic record fields (durations are not transported —
    /// they are not a pure function of the query sequence).
    pub record: QueryRecord,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Greeting sent once per connection.
    Hello {
        /// Server protocol version.
        proto: u64,
        /// Server-assigned session id.
        session: u64,
        /// The admission-permit pool size (size of the in-flight window).
        max_inflight: u64,
        /// `(index, total)` when this daemon serves as routed peer
        /// `index` of a `total`-peer fleet; `None` for a standalone
        /// daemon (and on every pre-4 peer).
        peer: Option<(u64, u64)>,
    },
    /// Reply to `VERSION`: echoes the version the server will speak with
    /// this session (the minimum of both sides' levels).
    Version {
        /// The negotiated protocol version.
        proto: u64,
    },
    /// Reply to `PING`.
    Pong(Option<String>),
    /// A completed query.
    Result(ResultFrame),
    /// Admission rejected: the permit pool is saturated. The query was
    /// **not** executed; the client owns the retry.
    Busy {
        /// Echo of the request's correlation id (0 for `HOLD`).
        id: u64,
        /// Permits in use when the request was rejected.
        inflight: u64,
        /// Pool size.
        max: u64,
    },
    /// Reply to `PROBE`: the slice-filtered candidate serials.
    Cands {
        /// Echo of the request's correlation id.
        id: u64,
        /// Candidate serials this peer owns, sorted ascending (`-` on the
        /// wire when empty).
        cands: Vec<u64>,
    },
    /// Reply to `ROUTE`: the replica applied the query.
    Routed {
        /// Echo of the request's correlation id.
        id: u64,
        /// The serial this replica assigned — must match the owner's
        /// serial when the fleet is in lockstep.
        serial: u64,
    },
    /// Counter snapshot; keys follow the deterministic-counter naming.
    Stats(Vec<(String, u64)>),
    /// `HOLD` succeeded.
    Held,
    /// `RELEASE` succeeded.
    Released,
    /// The server is closing this session.
    Bye {
        /// Why: `quit`, `shutdown`, or `draining`.
        reason: String,
    },
    /// A typed protocol error; the session stays open unless the code is
    /// `too-large` or `io`.
    Err {
        /// Stable error-code slug ([`ProtoError::code`] plus server codes
        /// like `max-sessions`, `not-holding`, `already-holding`,
        /// `deadline`, and `version` for a routed peer refusing a session
        /// that has not announced proto ≥ 4).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
}

// ---------------------------------------------------------------------------
// Graph codec
// ---------------------------------------------------------------------------

/// Encodes a graph as `<nodes>:<labels>:<edges>`.
pub fn encode_graph(g: &LabeledGraph) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}:", g.node_count());
    for (i, v) in g.nodes().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", g.label(v));
    }
    out.push(':');
    for (i, (u, v)) in g.edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{u}-{v}");
    }
    out
}

/// Decodes [`encode_graph`]'s format back into a graph, validating label
/// counts, edge endpoints, and the [`MAX_GRAPH_ITEMS`] sanity cap.
pub fn parse_graph(text: &str) -> Result<LabeledGraph, ProtoError> {
    let mut sections = text.splitn(3, ':');
    let (n, labels, edges) = match (sections.next(), sections.next(), sections.next()) {
        (Some(n), Some(l), Some(e)) => (n, l, e),
        _ => return Err(ProtoError::malformed("graph needs <n>:<labels>:<edges>")),
    };
    let n: usize = n
        .parse()
        .map_err(|_| ProtoError::malformed(format!("invalid node count {n:?}")))?;
    if n > MAX_GRAPH_ITEMS {
        return Err(ProtoError::malformed(format!(
            "graph node count {n} exceeds the {MAX_GRAPH_ITEMS} cap"
        )));
    }
    let mut label_vec: Vec<u32> = Vec::with_capacity(n);
    if !labels.is_empty() {
        for tok in labels.split(',') {
            let l: u32 = tok
                .parse()
                .map_err(|_| ProtoError::malformed(format!("invalid node label {tok:?}")))?;
            label_vec.push(l);
        }
    }
    if label_vec.len() != n {
        return Err(ProtoError::malformed(format!(
            "graph declares {n} nodes but carries {} labels",
            label_vec.len()
        )));
    }
    let mut edge_vec: Vec<(u32, u32)> = Vec::new();
    if !edges.is_empty() {
        for tok in edges.split(',') {
            if edge_vec.len() >= MAX_GRAPH_ITEMS {
                return Err(ProtoError::malformed(format!(
                    "graph edge count exceeds the {MAX_GRAPH_ITEMS} cap"
                )));
            }
            let (u, v) = tok
                .split_once('-')
                .ok_or_else(|| ProtoError::malformed(format!("invalid edge {tok:?}")))?;
            let u: u32 = u
                .parse()
                .map_err(|_| ProtoError::malformed(format!("invalid edge endpoint {u:?}")))?;
            let v: u32 = v
                .parse()
                .map_err(|_| ProtoError::malformed(format!("invalid edge endpoint {v:?}")))?;
            if u as usize >= n || v as usize >= n {
                return Err(ProtoError::malformed(format!(
                    "edge ({u}, {v}) out of range for {n} nodes"
                )));
            }
            edge_vec.push((u, v));
        }
    }
    Ok(LabeledGraph::from_parts(label_vec, &edge_vec))
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Splits a frame into whitespace-separated tokens, keeping a trailing
/// `key="quoted value"` token intact (quotes only appear in the final
/// `msg` token of `ERR` frames).
fn split_tokens(line: &str) -> Vec<&str> {
    let rest = line.trim();
    let mut tokens = Vec::new();
    if rest.is_empty() {
        return tokens;
    }
    if let Some(q) = rest.find('"') {
        // Everything from the token containing the opening quote to the
        // end of the line is one token.
        let start = rest[..q].rfind(' ').map(|i| i + 1).unwrap_or(0);
        tokens.extend(rest[..start].split_whitespace());
        tokens.push(rest[start..].trim_end());
    } else {
        tokens.extend(rest.split_whitespace());
    }
    tokens
}

/// Looks up `key=` in a token list, returning the raw value.
fn find_value<'a>(tokens: &[&'a str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

fn require<'a>(tokens: &[&'a str], key: &str, frame: &str) -> Result<&'a str, ProtoError> {
    find_value(tokens, key)
        .ok_or_else(|| ProtoError::malformed(format!("{frame} frame is missing {key}=")))
}

fn parse_u64(value: &str, key: &str) -> Result<u64, ProtoError> {
    value
        .parse()
        .map_err(|_| ProtoError::malformed(format!("invalid {key}= value {value:?}")))
}

fn quote(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len() + 2);
    out.push('"');
    for c in msg.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(raw: &str) -> Result<String, ProtoError> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| ProtoError::malformed(format!("expected quoted string, got {raw:?}")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            if c == '"' {
                return Err(ProtoError::malformed("unescaped quote inside string"));
            }
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => {
                return Err(ProtoError::malformed(format!(
                    "invalid escape \\{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

fn encode_id_list(ids: &[u32]) -> String {
    if ids.is_empty() {
        return "-".into();
    }
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out
}

fn parse_id_list(raw: &str) -> Result<Vec<u32>, ProtoError> {
    if raw == "-" {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| ProtoError::malformed(format!("invalid id {t:?} in list")))
        })
        .collect()
}

/// Serial lists (`allow=`, `cands=`) carry 64-bit query serials; the same
/// `-` convention marks an empty list.
fn encode_serial_list(serials: &[u64]) -> String {
    if serials.is_empty() {
        return "-".into();
    }
    let mut out = String::new();
    for (i, s) in serials.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{s}");
    }
    out
}

fn parse_serial_list(raw: &str) -> Result<Vec<u64>, ProtoError> {
    if raw == "-" {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| ProtoError::malformed(format!("invalid serial {t:?} in list")))
        })
        .collect()
}

fn kind_name(kind: QueryKind) -> &'static str {
    match kind {
        QueryKind::Subgraph => "sub",
        QueryKind::Supergraph => "super",
    }
}

fn parse_kind(args: &[&str]) -> Result<Option<QueryKind>, ProtoError> {
    match find_value(args, "kind") {
        None => Ok(None),
        Some("sub") => Ok(Some(QueryKind::Subgraph)),
        Some("super") => Ok(Some(QueryKind::Supergraph)),
        Some(other) => Err(ProtoError::malformed(format!(
            "invalid kind= value {other:?} (sub|super)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

/// The shared token tail of `QUERY` and `ROUTE` frames.
fn encode_query_tokens(q: &QueryFrame) -> String {
    let mut out = format!("id={} graph={}", q.id, encode_graph(&q.graph));
    if let Some(kind) = q.kind {
        let _ = write!(out, " kind={}", kind_name(kind));
    }
    if let Some(b) = q.verify_budget {
        let _ = write!(out, " budget={b}");
    }
    if let Some(m) = q.max_hits {
        let _ = write!(out, " max_hits={m}");
    }
    if q.bypass {
        out.push_str(" bypass=1");
    }
    if let Some(t) = q.timeout_ms {
        let _ = write!(out, " timeout={t}");
    }
    if let Some(allow) = &q.allow {
        let _ = write!(out, " allow={}", encode_serial_list(allow));
    }
    out
}

fn parse_query_frame(args: &[&str], frame: &str) -> Result<QueryFrame, ProtoError> {
    let id = parse_u64(require(args, "id", frame)?, "id")?;
    let graph = parse_graph(require(args, "graph", frame)?)?;
    let kind = parse_kind(args)?;
    let verify_budget = find_value(args, "budget")
        .map(|v| parse_u64(v, "budget"))
        .transpose()?;
    let max_hits = find_value(args, "max_hits")
        .map(|v| parse_u64(v, "max_hits"))
        .transpose()?;
    let bypass = match find_value(args, "bypass") {
        None => false,
        Some("1") => true,
        Some("0") => false,
        Some(other) => {
            return Err(ProtoError::malformed(format!(
                "invalid bypass= value {other:?} (0|1)"
            )))
        }
    };
    let timeout_ms = find_value(args, "timeout")
        .map(|v| parse_u64(v, "timeout"))
        .transpose()?;
    let allow = find_value(args, "allow")
        .map(parse_serial_list)
        .transpose()?;
    Ok(QueryFrame {
        id,
        graph,
        kind,
        verify_budget,
        max_hits,
        bypass,
        timeout_ms,
        allow,
    })
}

/// Serializes a request to its one-line frame (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Ping(None) => "PING".into(),
        Request::Ping(Some(token)) => format!("PING token={token}"),
        Request::Version { proto } => format!("VERSION proto={proto}"),
        Request::Query(q) => format!("QUERY {}", encode_query_tokens(q)),
        Request::Route(q) => format!("ROUTE {}", encode_query_tokens(q)),
        Request::Probe { id, graph, kind } => {
            let mut out = format!("PROBE id={id} graph={}", encode_graph(graph));
            if let Some(kind) = kind {
                let _ = write!(out, " kind={}", kind_name(*kind));
            }
            out
        }
        Request::Stats(scope) => match scope.name() {
            None => "STATS".into(),
            Some(name) => format!("STATS scope={name}"),
        },
        Request::Hold => "HOLD".into(),
        Request::Release => "RELEASE".into(),
        Request::Shutdown => "SHUTDOWN".into(),
        Request::Quit => "QUIT".into(),
    }
}

/// Parses one client frame. Any failure is a typed error, never a panic.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let tokens = split_tokens(line);
    let (&keyword, args) = tokens
        .split_first()
        .ok_or_else(|| ProtoError::malformed("empty frame"))?;
    match keyword {
        "PING" => Ok(Request::Ping(
            find_value(args, "token").map(|t| t.to_string()),
        )),
        "VERSION" => Ok(Request::Version {
            proto: parse_u64(require(args, "proto", "VERSION")?, "proto")?,
        }),
        "QUERY" => Ok(Request::Query(parse_query_frame(args, "QUERY")?)),
        "ROUTE" => Ok(Request::Route(parse_query_frame(args, "ROUTE")?)),
        "PROBE" => Ok(Request::Probe {
            id: parse_u64(require(args, "id", "PROBE")?, "id")?,
            graph: parse_graph(require(args, "graph", "PROBE")?)?,
            kind: parse_kind(args)?,
        }),
        "STATS" => match find_value(args, "scope") {
            None => Ok(Request::Stats(StatsScope::Global)),
            Some("mine") => Ok(Request::Stats(StatsScope::Mine)),
            Some("settle") => Ok(Request::Stats(StatsScope::Settle)),
            Some(other) => Err(ProtoError::malformed(format!(
                "invalid scope= value {other:?} (mine|settle)"
            ))),
        },
        "HOLD" => Ok(Request::Hold),
        "RELEASE" => Ok(Request::Release),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "QUIT" => Ok(Request::Quit),
        other => Err(ProtoError::malformed(format!(
            "unknown frame keyword {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

/// Serializes a response to its one-line frame (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Hello {
            proto,
            session,
            max_inflight,
            peer,
        } => {
            let mut out =
                format!("HELLO proto={proto} session={session} max_inflight={max_inflight}");
            if let Some((index, total)) = peer {
                let _ = write!(out, " peer={index}/{total}");
            }
            out
        }
        Response::Version { proto } => format!("VERSION proto={proto}"),
        Response::Cands { id, cands } => {
            format!("CANDS id={id} cands={}", encode_serial_list(cands))
        }
        Response::Routed { id, serial } => format!("ROUTED id={id} serial={serial}"),
        Response::Pong(None) => "PONG".into(),
        Response::Pong(Some(token)) => format!("PONG token={token}"),
        Response::Result(r) => {
            let mut out = format!(
                "RESULT id={} serial={} answers={} ids={}",
                r.id,
                r.serial,
                r.answer.len(),
                encode_id_list(&r.answer)
            );
            for (name, value) in r.record.deterministic_fields() {
                let _ = write!(out, " {name}={value}");
            }
            out
        }
        Response::Busy { id, inflight, max } => {
            format!("BUSY id={id} inflight={inflight} max={max}")
        }
        Response::Stats(counters) => {
            let mut out = String::from("STATS");
            for (name, value) in counters {
                let _ = write!(out, " {name}={value}");
            }
            out
        }
        Response::Held => "HELD".into(),
        Response::Released => "RELEASED".into(),
        Response::Bye { reason } => format!("BYE reason={reason}"),
        Response::Err { code, msg } => format!("ERR code={code} msg={}", quote(msg)),
    }
}

/// Parses one server frame. Any failure is a typed error, never a panic.
pub fn parse_response(line: &str) -> Result<Response, ProtoError> {
    let tokens = split_tokens(line);
    let (&keyword, args) = tokens
        .split_first()
        .ok_or_else(|| ProtoError::malformed("empty frame"))?;
    match keyword {
        "HELLO" => Ok(Response::Hello {
            proto: parse_u64(require(args, "proto", "HELLO")?, "proto")?,
            session: parse_u64(require(args, "session", "HELLO")?, "session")?,
            max_inflight: parse_u64(require(args, "max_inflight", "HELLO")?, "max_inflight")?,
            peer: match find_value(args, "peer") {
                None => None,
                Some(raw) => {
                    let (index, total) = raw.split_once('/').ok_or_else(|| {
                        ProtoError::malformed(format!("invalid peer= value {raw:?} (want I/N)"))
                    })?;
                    Some((parse_u64(index, "peer")?, parse_u64(total, "peer")?))
                }
            },
        }),
        "VERSION" => Ok(Response::Version {
            proto: parse_u64(require(args, "proto", "VERSION")?, "proto")?,
        }),
        "CANDS" => Ok(Response::Cands {
            id: parse_u64(require(args, "id", "CANDS")?, "id")?,
            cands: parse_serial_list(require(args, "cands", "CANDS")?)?,
        }),
        "ROUTED" => Ok(Response::Routed {
            id: parse_u64(require(args, "id", "ROUTED")?, "id")?,
            serial: parse_u64(require(args, "serial", "ROUTED")?, "serial")?,
        }),
        "PONG" => Ok(Response::Pong(
            find_value(args, "token").map(|t| t.to_string()),
        )),
        "RESULT" => {
            let id = parse_u64(require(args, "id", "RESULT")?, "id")?;
            let serial = parse_u64(require(args, "serial", "RESULT")?, "serial")?;
            let answers = parse_u64(require(args, "answers", "RESULT")?, "answers")?;
            let answer = parse_id_list(require(args, "ids", "RESULT")?)?;
            if answer.len() as u64 != answers {
                return Err(ProtoError::malformed(format!(
                    "RESULT declares {answers} answers but ids= carries {}",
                    answer.len()
                )));
            }
            let mut record = QueryRecord {
                serial,
                ..Default::default()
            };
            // Every deterministic field must be present — a missing field
            // would silently zero a counter and break served-counter
            // parity. Unknown extra tokens are ignored (forward compat).
            for (name, _) in QueryRecord::default().deterministic_fields() {
                let raw = require(args, name, "RESULT")?;
                let value = parse_u64(raw, name)?;
                record.set_deterministic_field(name, value);
            }
            Ok(Response::Result(ResultFrame {
                id,
                serial,
                answer,
                record,
            }))
        }
        "BUSY" => Ok(Response::Busy {
            id: parse_u64(require(args, "id", "BUSY")?, "id")?,
            inflight: parse_u64(require(args, "inflight", "BUSY")?, "inflight")?,
            max: parse_u64(require(args, "max", "BUSY")?, "max")?,
        }),
        "STATS" => {
            let mut counters = Vec::with_capacity(args.len());
            for tok in args {
                let (name, value) = tok.split_once('=').ok_or_else(|| {
                    ProtoError::malformed(format!("STATS token {tok:?} is not key=value"))
                })?;
                counters.push((name.to_string(), parse_u64(value, name)?));
            }
            Ok(Response::Stats(counters))
        }
        "HELD" => Ok(Response::Held),
        "RELEASED" => Ok(Response::Released),
        "BYE" => Ok(Response::Bye {
            reason: require(args, "reason", "BYE")?.to_string(),
        }),
        "ERR" => Ok(Response::Err {
            code: require(args, "code", "ERR")?.to_string(),
            msg: unquote(require(args, "msg", "ERR")?)?,
        }),
        other => Err(ProtoError::malformed(format!(
            "unknown frame keyword {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Frame reader
// ---------------------------------------------------------------------------

/// One step of [`FrameReader::poll_frame`].
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame line (newline stripped, never blank).
    Frame(String),
    /// The peer closed the connection cleanly (no partial frame buffered).
    Closed,
    /// The read timed out (`WouldBlock`/`TimedOut`) — the caller may poll
    /// its shutdown flags and call again.
    Idle,
}

/// Incremental line framer over any [`Read`]: tolerates arbitrarily split
/// reads (a frame may arrive one byte at a time), strips `\r\n`, skips
/// blank lines, and enforces the frame-size cap. The reader owns only the
/// buffer, not the transport, so the same stream can be written between
/// polls.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    scanned: usize,
    limit: usize,
}

impl FrameReader {
    /// A reader with the protocol's [`MAX_FRAME_BYTES`] cap.
    pub fn new() -> FrameReader {
        FrameReader::with_limit(MAX_FRAME_BYTES)
    }

    /// A reader with a custom frame cap (tests use small limits).
    pub fn with_limit(limit: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            scanned: 0,
            limit,
        }
    }

    /// Reads until one complete frame, EOF, or a read timeout.
    ///
    /// Errors: [`ProtoError::TooLarge`] once the buffered line exceeds the
    /// cap (the stream cannot be re-synchronised afterwards),
    /// [`ProtoError::Malformed`] for invalid UTF-8 (the line was consumed,
    /// so the caller may keep polling), and [`ProtoError::Io`] for
    /// transport failures including EOF in the middle of a frame.
    pub fn poll_frame(&mut self, r: &mut impl Read) -> Result<FrameEvent, ProtoError> {
        loop {
            // Scan only bytes not seen by previous polls.
            if let Some(off) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let end = self.scanned + off;
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                if line.len() > self.limit {
                    return Err(ProtoError::TooLarge { limit: self.limit });
                }
                let text = String::from_utf8(line)
                    .map_err(|_| ProtoError::malformed("frame is not valid utf-8"))?;
                if text.trim().is_empty() {
                    continue;
                }
                return Ok(FrameEvent::Frame(text));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.limit {
                return Err(ProtoError::TooLarge { limit: self.limit });
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.iter().all(|b| b.is_ascii_whitespace()) {
                        return Ok(FrameEvent::Closed);
                    }
                    // Transport-level truncation, not a frame-level parse
                    // failure — sessions close on it instead of replying.
                    return Err(ProtoError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed in the middle of a frame",
                    )));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        return Ok(FrameEvent::Idle)
                    }
                    std::io::ErrorKind::Interrupted => continue,
                    _ => return Err(ProtoError::Io(e)),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_graph() -> LabeledGraph {
        LabeledGraph::from_parts(vec![3, 1, 4, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn graph_codec_round_trips() {
        for g in [
            sample_graph(),
            LabeledGraph::from_parts(vec![7], &[]),
            LabeledGraph::from_parts(vec![], &[]),
        ] {
            let back = parse_graph(&encode_graph(&g)).expect("parse");
            assert_eq!(back, g);
        }
    }

    #[test]
    fn graph_codec_rejects_garbage() {
        for bad in [
            "",
            "x",
            "2:1:0-1",       // label count mismatch
            "2:1,2:0-5",     // edge endpoint out of range
            "2:1,2:0+1",     // bad edge separator
            "2:1,a:",        // bad label
            "abc:1,2:",      // bad node count
            "9999999999:1:", // count over the cap
            "2:1,2:0-1,nonsense",
        ] {
            assert!(parse_graph(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn request_round_trips() {
        let requests = vec![
            Request::Ping(None),
            Request::Ping(Some("abc123".into())),
            Request::Version { proto: 4 },
            Request::Query(QueryFrame {
                id: 42,
                graph: sample_graph(),
                kind: Some(QueryKind::Supergraph),
                verify_budget: Some(500),
                max_hits: Some(3),
                bypass: true,
                timeout_ms: Some(250),
                allow: Some(vec![100, 200, u64::MAX]),
            }),
            Request::Query(QueryFrame {
                id: 0,
                graph: LabeledGraph::from_parts(vec![1], &[]),
                kind: None,
                verify_budget: None,
                max_hits: None,
                bypass: false,
                timeout_ms: None,
                allow: None,
            }),
            Request::Query(QueryFrame {
                id: 1,
                graph: LabeledGraph::from_parts(vec![1], &[]),
                kind: None,
                verify_budget: None,
                max_hits: None,
                bypass: false,
                timeout_ms: None,
                allow: Some(Vec::new()), // empty allow list ≠ no allow list
            }),
            Request::Probe {
                id: 7,
                graph: sample_graph(),
                kind: Some(QueryKind::Subgraph),
            },
            Request::Probe {
                id: 8,
                graph: LabeledGraph::from_parts(vec![2], &[]),
                kind: None,
            },
            Request::Route(QueryFrame {
                id: 11,
                graph: sample_graph(),
                kind: None,
                verify_budget: Some(9),
                max_hits: None,
                bypass: false,
                timeout_ms: None,
                allow: Some(vec![300]),
            }),
            Request::Stats(StatsScope::Global),
            Request::Stats(StatsScope::Mine),
            Request::Stats(StatsScope::Settle),
            Request::Hold,
            Request::Release,
            Request::Shutdown,
            Request::Quit,
        ];
        for req in requests {
            let line = encode_request(&req);
            let back = parse_request(&line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
            assert_eq!(back, req, "{line:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let mut record = QueryRecord::default();
        for (i, (name, _)) in QueryRecord::default()
            .deterministic_fields()
            .iter()
            .enumerate()
        {
            record.set_deterministic_field(name, (i % 2) as u64 * (i as u64 + 1));
        }
        let responses = vec![
            Response::Hello {
                proto: PROTO_VERSION,
                session: 7,
                max_inflight: 4,
                peer: None,
            },
            Response::Hello {
                proto: PROTO_VERSION,
                session: 8,
                max_inflight: 1,
                peer: Some((2, 3)),
            },
            Response::Version { proto: 4 },
            Response::Cands {
                id: 5,
                cands: vec![100, 300, u64::MAX],
            },
            Response::Cands {
                id: 6,
                cands: Vec::new(),
            },
            Response::Routed { id: 7, serial: 99 },
            Response::Pong(None),
            Response::Pong(Some("tok".into())),
            Response::Result(ResultFrame {
                id: 9,
                serial: 12,
                answer: vec![1, 4, 9],
                record: record.clone(),
            }),
            Response::Result(ResultFrame {
                id: 1,
                serial: 2,
                answer: vec![],
                record: QueryRecord::default(),
            }),
            Response::Busy {
                id: 3,
                inflight: 4,
                max: 4,
            },
            Response::Stats(vec![("queries".into(), 10), ("busy".into(), 2)]),
            Response::Held,
            Response::Released,
            Response::Bye {
                reason: "draining".into(),
            },
            Response::Err {
                code: "bad-frame".into(),
                msg: "tricky \"message\"\nwith\\escapes\ttab".into(),
            },
        ];
        for resp in responses {
            let line = encode_response(&resp);
            let back = parse_response(&line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
            // Result frames only transport the deterministic record slice;
            // compare those fields, everything else structurally.
            match (&back, &resp) {
                (Response::Result(b), Response::Result(r)) => {
                    assert_eq!(b.id, r.id);
                    assert_eq!(b.serial, r.serial);
                    assert_eq!(b.answer, r.answer);
                    assert_eq!(
                        b.record.deterministic_fields(),
                        r.record.deterministic_fields()
                    );
                }
                _ => assert_eq!(back, resp, "{line:?}"),
            }
        }
    }

    #[test]
    fn result_frame_declared_count_must_match() {
        let line = encode_response(&Response::Result(ResultFrame {
            id: 1,
            serial: 1,
            answer: vec![5, 6],
            record: QueryRecord::default(),
        }));
        let broken = line.replace("answers=2", "answers=3");
        assert!(parse_response(&broken).is_err());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "",
            "   ",
            "NOPE",
            "QUERY",                    // missing id and graph
            "QUERY id=1",               // missing graph
            "QUERY id=x graph=1:1:",    // bad id
            "QUERY id=1 graph=2:1:0-1", // label count mismatch
            "QUERY id=1 graph=1:1: kind=diagonal",
            "QUERY id=1 graph=1:1: bypass=yes",
            "STATS scope=theirs",
        ] {
            match parse_request(bad) {
                Err(ProtoError::Malformed { .. }) => {}
                other => panic!("{bad:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn split_reads_reassemble_frames() {
        // A reader that returns one byte per read call.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let wire = b"PING\r\n\nQUERY id=1 graph=1:1:\nQUIT\n";
        let mut reader = FrameReader::new();
        let mut src = OneByte(wire, 0);
        let mut frames = Vec::new();
        loop {
            match reader.poll_frame(&mut src).expect("no errors") {
                FrameEvent::Frame(f) => frames.push(f),
                FrameEvent::Closed => break,
                FrameEvent::Idle => unreachable!("OneByte never blocks"),
            }
        }
        assert_eq!(frames, vec!["PING", "QUERY id=1 graph=1:1:", "QUIT"]);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut reader = FrameReader::with_limit(16);
        let long = [b'A'; 64];
        let mut src = &long[..];
        match reader.poll_frame(&mut src) {
            Err(ProtoError::TooLarge { limit: 16 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // A line exactly at the limit passes.
        let mut reader = FrameReader::with_limit(16);
        let mut src: &[u8] = b"0123456789ABCDEF\n";
        match reader.poll_frame(&mut src) {
            Ok(FrameEvent::Frame(f)) => assert_eq!(f.len(), 16),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_a_truncation_error() {
        let mut reader = FrameReader::new();
        let mut src: &[u8] = b"QUERY id=1 gra";
        match reader.poll_frame(&mut src) {
            Err(ProtoError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut reader = FrameReader::new();
        let mut src: &[u8] = b"PING \xff\xfe\n";
        match reader.poll_frame(&mut src) {
            Err(ProtoError::Malformed { what }) => assert!(what.contains("utf-8"), "{what}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeouts_surface_as_idle() {
        struct AlwaysBlocks;
        impl Read for AlwaysBlocks {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "later"))
            }
        }
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll_frame(&mut AlwaysBlocks),
            Ok(FrameEvent::Idle)
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary garbage never panics or wedges the parser: every line
        /// either parses or yields a typed error.
        #[test]
        fn garbage_lines_never_panic(bytes in proptest::collection::vec(0u8..=254, 0..200)) {
            let line = String::from_utf8_lossy(&bytes).into_owned();
            let _ = parse_request(&line);
            let _ = parse_response(&line);
            let _ = parse_graph(&line);
        }

        /// Truncating a valid frame at any byte never panics — it either
        /// still parses (prefix happens to be valid) or errors.
        #[test]
        fn truncated_frames_never_panic(cut in 0usize..200) {
            let full = encode_request(&Request::Query(QueryFrame {
                id: u64::MAX,
                graph: LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2)]),
                kind: Some(QueryKind::Subgraph),
                verify_budget: Some(9),
                max_hits: Some(2),
                bypass: false,
                timeout_ms: Some(100),
                allow: Some(vec![100, 200]),
            }));
            let cut = cut.min(full.len());
            if full.is_char_boundary(cut) {
                let _ = parse_request(&full[..cut]);
            }
        }

        /// Random query frames round-trip exactly.
        #[test]
        fn query_frames_round_trip(
            id in proptest::arbitrary::any::<u64>(),
            labels in proptest::collection::vec(0u32..5, 1..8),
            edge_seed in proptest::collection::vec((0u32..8, 0u32..8), 0..10),
            budget in proptest::arbitrary::any::<bool>(),
            allow_some in proptest::arbitrary::any::<bool>(),
            allow_vals in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 0..6),
        ) {
            let allow = allow_some.then_some(allow_vals);
            let n = labels.len() as u32;
            let edges: Vec<(u32, u32)> = edge_seed
                .into_iter()
                .map(|(u, v)| (u % n, v % n))
                .filter(|(u, v)| u != v)
                .collect();
            let frame = Request::Query(QueryFrame {
                id,
                graph: LabeledGraph::from_parts(labels, &edges),
                kind: None,
                verify_budget: budget.then_some(7),
                max_hits: None,
                bypass: false,
                timeout_ms: budget.then_some(42),
                allow,
            });
            let back = parse_request(&encode_request(&frame)).unwrap();
            prop_assert_eq!(back, frame);
        }
    }
}
