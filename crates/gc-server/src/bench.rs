//! Served-mode scenario execution: the same harness suites, driven
//! through the daemon over a socket instead of in-process calls.
//!
//! `gc bench --serve` runs each [`Scenario`] exactly as the in-process
//! runner does — same dataset, workload, and cache construction, same
//! deterministic [`CostModel::Work`] — but replays the workload as a
//! protocol client against an in-process [`Server`] on a private unix
//! socket. Records come back inside `RESULT` frames, maintenance and
//! cache-shape counters via `STATS scope=settle`, and the report is
//! assembled in the *identical* counter order. The point is the
//! acceptance bar of the daemon: served counters must be **byte-identical**
//! to `gc bench`'s in-process counters for the same seeds, so the same
//! committed `benches/baseline.json` gates both paths. That parity is
//! the correctness spine for routing queries to remote caches later
//! (ROADMAP item 5).

use crate::client::{Client, ClientError, QueryOutcome, RetryPolicy};
use crate::proto::{QueryFrame, StatsScope};
use crate::server::{ServeConfig, Server};
use gc_core::{CostModel, GraphCache, QueryRecord, RunCounters};
use gc_harness::{MatrixReport, Scenario, ScenarioReport, Suite, SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A socket path that is unique per process *and* per call, so parallel
/// tests and repeated suites never collide.
fn scratch_socket(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "gc-serve-bench-{}-{seq}-{tag}.sock",
        std::process::id()
    ))
}

/// Runs one scenario through the daemon. The replay is a single client
/// session submitting queries strictly in workload order — the served
/// analogue of the suites' sequential one-client replay, which is what
/// keeps the counter stream a pure function of the seeds.
pub fn run_scenario_served(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let t0 = Instant::now();
    let dataset = scenario
        .dataset
        .clone()
        .scaled(scenario.dataset_scale)
        .generate(scenario.dataset_seed);
    let workload = scenario.workload.generate(
        &dataset,
        &scenario.query_sizes,
        scenario.queries,
        scenario.workload_seed,
    );
    let method = scenario.method.build(&dataset);

    // Cache construction mirrors gc_harness::runner::run_scenario exactly
    // (including the deterministic work-proxy cost model) — any divergence
    // here shows up as counter drift against the shared baseline.
    let mut builder = GraphCache::builder()
        .capacity(scenario.capacity)
        .window(scenario.window)
        .eviction(scenario.eviction.as_str())
        .query_kind(scenario.kind)
        .threads(scenario.threads)
        .shards(scenario.shards)
        .cost_model(CostModel::Work)
        .fragments(scenario.fragments);
    if let Some(budget) = scenario.verify_budget {
        builder = builder.verify_budget(budget);
    }
    if let Some(admission) = &scenario.admission {
        builder = builder.admission(admission.as_str());
    }
    if let Some(bytes) = scenario.fragment_budget {
        builder = builder.fragment_budget(bytes);
    }
    if let Some(spec) = &scenario.fragment_eviction {
        builder = builder.fragment_eviction(spec.as_str());
    }
    let cache = builder
        .try_build(method)
        .map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;

    let socket = scratch_socket(&scenario.name);
    let server = Server::bind(
        cache,
        ServeConfig {
            unix: Some(socket.clone()),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("scenario {:?}: cannot bind {socket:?}: {e}", scenario.name))?;
    let shutdown = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run());

    let served = serve_workload(&socket, workload.graphs());
    if served.is_err() {
        // The protocol SHUTDOWN never went out; drain out-of-band so a
        // replay failure cannot leave the daemon thread running forever.
        shutdown.shutdown();
    }
    // Join the daemon even when the replay failed, so a scenario error
    // never leaks a live server thread or a socket file.
    let daemon_result = daemon
        .join()
        .map_err(|_| format!("scenario {:?}: server thread panicked", scenario.name))?;
    let _ = std::fs::remove_file(&socket);
    let (records, stats) = served.map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;
    daemon_result.map_err(|e| format!("scenario {:?}: server failed: {e}", scenario.name))?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Counter assembly in the runner's exact order: run counters, then
    // maintenance, then final cache shape.
    let run = RunCounters::from_records(&records, scenario.warmup);
    let mut counters: Vec<(String, u64)> = run
        .deterministic_counters()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    for key in [
        "maint_rounds",
        "entries_admitted",
        "entries_evicted",
        "shards_patched",
        "compactions",
        "fragments_built",
        "fragments_evicted",
        "postings_debt",
        "cache_entries",
        "memory_bytes",
        "snapshots_written",
        "recovered_generation",
    ] {
        let value = stats
            .iter()
            .find(|(name, _)| name == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("scenario {:?}: STATS reply is missing {key}", scenario.name))?;
        counters.push((key.to_string(), value));
    }

    Ok(ScenarioReport {
        name: scenario.name.clone(),
        config: scenario.config_echo(),
        counters,
        wall_ms,
    })
}

/// What one served replay produces: per-query records (for run-counter
/// reconstruction) plus the daemon's settled global STATS payload.
type ReplayOutput = (Vec<QueryRecord>, Vec<(String, u64)>);

/// One client session: replay every query in order, then read the settled
/// global stats and ask the daemon to drain.
fn serve_workload<'a>(
    socket: &Path,
    graphs: impl Iterator<Item = &'a gc_graph::LabeledGraph>,
) -> Result<ReplayOutput, ClientError> {
    let mut client = connect_with_retry(socket)?;
    let mut records = Vec::new();
    // The ISSUE's parity bar: counters must stay byte-identical *with the
    // failure-handling paths enabled*. Every query carries a generous
    // deadline (never hit on these tiny scenarios) and goes through the
    // retry wrapper (BUSY never fires for one sequential client), so the
    // deadline and retry machinery is exercised without perturbing the
    // deterministic counter stream.
    let retry = RetryPolicy::default();
    for (i, graph) in graphs.enumerate() {
        let frame = QueryFrame {
            id: i as u64,
            graph: graph.clone(),
            kind: None,
            verify_budget: None,
            max_hits: None,
            bypass: false,
            timeout_ms: Some(60_000),
        };
        match client.query_with_retry(frame, &retry)? {
            QueryOutcome::Result(result) => records.push(result.record),
            QueryOutcome::Busy { inflight, max } => {
                // One sequential client can never saturate the pool; a
                // BUSY here means the server is broken, not loaded.
                return Err(ClientError::Server {
                    code: "busy".into(),
                    msg: format!(
                        "sequential replay rejected with BUSY ({inflight}/{max} in flight)"
                    ),
                });
            }
        }
    }
    let stats = client.stats(StatsScope::Settle)?;
    client.shutdown()?;
    Ok((records, stats))
}

/// Connects to the daemon's socket, tolerating the small window between
/// `Server::bind` (socket exists) and the accept loop starting.
fn connect_with_retry(socket: &Path) -> Result<Client, ClientError> {
    let mut last = None;
    for _ in 0..200 {
        match Client::connect_unix(socket) {
            Ok(client) => return Ok(client),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
    Err(last.unwrap_or(ClientError::SessionClosed { reason: None }))
}

/// Runs every scenario of a suite through the daemon, in order, with the
/// same progress-callback shape as [`gc_harness::run_suite_with`].
pub fn run_suite_served_with<F>(suite: Suite, mut progress: F) -> Result<MatrixReport, String>
where
    F: FnMut(&ScenarioReport),
{
    let mut scenarios = Vec::new();
    for scenario in suite.scenarios() {
        let report = run_scenario_served(&scenario)?;
        progress(&report);
        scenarios.push(report);
    }
    Ok(MatrixReport {
        schema_version: SCHEMA_VERSION,
        suite: suite.name().to_string(),
        scenarios,
    })
}

/// Runs every scenario of a suite through the daemon, in order.
pub fn run_suite_served(suite: Suite) -> Result<MatrixReport, String> {
    run_suite_served_with(suite, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_harness::run_scenario;

    fn tiny(name: &str) -> Scenario {
        let mut s = Scenario::named(name);
        s.dataset_scale = 0.05;
        s.queries = 30;
        s.capacity = 12;
        s.window = 8;
        s.query_sizes = vec![4, 6];
        s.warmup = 5;
        s
    }

    /// The acceptance bar: served counters are byte-identical to the
    /// in-process runner's for the same scenario.
    #[test]
    fn served_counters_match_in_process() {
        let s = tiny("served-parity");
        let in_process = run_scenario(&s).expect("in-process run");
        let served = run_scenario_served(&s).expect("served run");
        assert_eq!(served.counters, in_process.counters);
        assert_eq!(served.config, in_process.config);
    }

    /// Parity holds on the budgeted/admission-gated path too, where the
    /// verification pool and admission threshold are live.
    #[test]
    fn served_counters_match_with_budget_and_admission() {
        let mut s = tiny("served-parity-budget");
        s.verify_budget = Some(400);
        s.admission = Some("adaptive".into());
        s.eviction = "gcr".into();
        let in_process = run_scenario(&s).expect("in-process run");
        let served = run_scenario_served(&s).expect("served run");
        assert_eq!(served.counters, in_process.counters);
    }

    /// Parity holds with the fragment layer live: the fragment counters in
    /// the RESULT frames and the fragment upkeep counters in STATS must be
    /// byte-identical to the in-process run.
    #[test]
    fn served_counters_match_with_fragments() {
        use gc_harness::WorkloadSpec;
        let mut s = tiny("served-parity-fragments");
        s.fragments = true;
        s.method = gc_methods::MethodKind::SiVf2;
        s.workload = WorkloadSpec::Zz(1.05);
        let in_process = run_scenario(&s).expect("in-process run");
        let served = run_scenario_served(&s).expect("served run");
        assert_eq!(served.counters, in_process.counters);
        assert!(
            in_process.counter("fragment_probes").unwrap_or(0) > 0,
            "the parity check must actually exercise the fragment path"
        );
    }
}
