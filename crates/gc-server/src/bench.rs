//! Served-mode scenario execution: the same harness suites, driven
//! through the daemon over a socket instead of in-process calls.
//!
//! `gc bench --serve` runs each [`Scenario`] exactly as the in-process
//! runner does — same dataset, workload, and cache construction, same
//! deterministic [`CostModel::Work`](gc_core::CostModel::Work) — but replays the workload as a
//! protocol client against an in-process [`Server`] on a private unix
//! socket. Records come back inside `RESULT` frames, maintenance and
//! cache-shape counters via `STATS scope=settle`, and the report is
//! assembled in the *identical* counter order. The point is the
//! acceptance bar of the daemon: served counters must be **byte-identical**
//! to `gc bench`'s in-process counters for the same seeds, so the same
//! committed `benches/baseline.json` gates both paths. That parity is
//! the correctness spine for routing queries to remote caches later
//! (ROADMAP item 5).

use crate::client::{Client, ClientError, QueryOutcome, RetryPolicy};
use crate::proto::{QueryFrame, StatsScope};
use crate::router::{PeerIdentity, Router, RouterConfig};
use crate::server::{ServeConfig, Server};
use gc_core::{QueryRecord, RunCounters};
use gc_harness::{build_cache, MatrixReport, Scenario, ScenarioReport, Suite, SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A socket path that is unique per process *and* per call, so parallel
/// tests and repeated suites never collide.
fn scratch_socket(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "gc-serve-bench-{}-{seq}-{tag}.sock",
        std::process::id()
    ))
}

/// Runs one scenario through the daemon. The replay is a single client
/// session submitting queries strictly in workload order — the served
/// analogue of the suites' sequential one-client replay, which is what
/// keeps the counter stream a pure function of the seeds.
pub fn run_scenario_served(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let t0 = Instant::now();
    let dataset = scenario
        .dataset
        .clone()
        .scaled(scenario.dataset_scale)
        .generate(scenario.dataset_seed);
    let workload = scenario.workload.generate(
        &dataset,
        &scenario.query_sizes,
        scenario.queries,
        scenario.workload_seed,
    );
    // Cache construction goes through the harness's own builder, so the
    // served cache is constructed by the exact code path the in-process
    // runner uses — any divergence shows up as counter drift against the
    // shared baseline.
    let cache = build_cache(scenario, &dataset)?;

    let socket = scratch_socket(&scenario.name);
    let server = Server::bind(
        cache,
        ServeConfig {
            unix: Some(socket.clone()),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("scenario {:?}: cannot bind {socket:?}: {e}", scenario.name))?;
    let shutdown = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run());

    let served = serve_workload(&socket, workload.graphs());
    if served.is_err() {
        // The protocol SHUTDOWN never went out; drain out-of-band so a
        // replay failure cannot leave the daemon thread running forever.
        shutdown.shutdown();
    }
    // Join the daemon even when the replay failed, so a scenario error
    // never leaks a live server thread or a socket file.
    let daemon_result = daemon
        .join()
        .map_err(|_| format!("scenario {:?}: server thread panicked", scenario.name))?;
    let _ = std::fs::remove_file(&socket);
    let (records, stats) = served.map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;
    daemon_result.map_err(|e| format!("scenario {:?}: server failed: {e}", scenario.name))?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    Ok(ScenarioReport {
        name: scenario.name.clone(),
        config: scenario.config_echo(),
        counters: assemble_counters(scenario, &records, &stats)?,
        wall_ms,
    })
}

/// Counter assembly in the runner's exact order: run counters
/// reconstructed from the replayed records, then maintenance, then final
/// cache shape from STATS. Extra STATS keys (a routed fleet appends
/// `routed_exact`/`fanout_probes`/`peer_misses`/`peers_live`/
/// `peers_total`) are deliberately ignored — the deterministic baseline
/// schema is frozen, and routing counters sit outside it.
fn assemble_counters(
    scenario: &Scenario,
    records: &[QueryRecord],
    stats: &[(String, u64)],
) -> Result<Vec<(String, u64)>, String> {
    let run = RunCounters::from_records(records, scenario.warmup);
    let mut counters: Vec<(String, u64)> = run
        .deterministic_counters()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    for key in [
        "maint_rounds",
        "entries_admitted",
        "entries_evicted",
        "shards_patched",
        "compactions",
        "fragments_built",
        "fragments_evicted",
        "postings_debt",
        "cache_entries",
        "memory_bytes",
        "snapshots_written",
        "recovered_generation",
    ] {
        let value = stats
            .iter()
            .find(|(name, _)| name == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("scenario {:?}: STATS reply is missing {key}", scenario.name))?;
        counters.push((key.to_string(), value));
    }
    Ok(counters)
}

/// Runs one scenario through a routed fleet: `peers` daemons, each a full
/// replica owning a consistent-hash slice of the fingerprint space,
/// fronted by a [`Router`] on its own socket. The replay is the same
/// single sequential client session as [`run_scenario_served`], pointed
/// at the router. The acceptance bar is the tentpole's determinism gate:
/// for any fleet size, the assembled counters are byte-identical to the
/// in-process runner's (and therefore to a 1-peer fleet's) for the same
/// seeds.
pub fn run_scenario_routed(scenario: &Scenario, peers: usize) -> Result<ScenarioReport, String> {
    if peers == 0 {
        return Err("a routed fleet needs at least one peer".into());
    }
    let t0 = Instant::now();
    let dataset = scenario
        .dataset
        .clone()
        .scaled(scenario.dataset_scale)
        .generate(scenario.dataset_seed);
    let workload = scenario.workload.generate(
        &dataset,
        &scenario.query_sizes,
        scenario.queries,
        scenario.workload_seed,
    );

    // Every peer is a full replica: same dataset, same deterministic
    // construction, so re-executing the routed stream keeps them in
    // lockstep.
    let mut fleet_handles = Vec::new();
    let mut fleet_daemons = Vec::new();
    let mut peer_sockets = Vec::new();
    let mut boot = || -> Result<(), String> {
        for index in 0..peers {
            let cache = build_cache(scenario, &dataset)?;
            let socket = scratch_socket(&format!("{}-peer{index}", scenario.name));
            let server = Server::bind(
                cache,
                ServeConfig {
                    unix: Some(socket.clone()),
                    peer: PeerIdentity::new(index as u64, peers as u64),
                    ..ServeConfig::default()
                },
            )
            .map_err(|e| format!("scenario {:?}: cannot bind {socket:?}: {e}", scenario.name))?;
            fleet_handles.push(server.shutdown_handle());
            fleet_daemons.push(std::thread::spawn(move || server.run()));
            peer_sockets.push(socket);
        }
        Ok(())
    };
    if let Err(e) = boot() {
        drain_fleet(&fleet_handles, fleet_daemons, &peer_sockets);
        return Err(e);
    }

    let router_socket = scratch_socket(&format!("{}-router", scenario.name));
    let router = match Router::bind(RouterConfig {
        unix: router_socket.clone(),
        peers: peer_sockets.clone(),
        retry: RetryPolicy::with_attempts(10),
        handle_signals: false,
    }) {
        Ok(router) => router,
        Err(e) => {
            drain_fleet(&fleet_handles, fleet_daemons, &peer_sockets);
            return Err(format!(
                "scenario {:?}: cannot bind router {router_socket:?}: {e}",
                scenario.name
            ));
        }
    };
    let router_shutdown = router.shutdown_handle();
    let router_daemon = std::thread::spawn(move || router.run());

    // The replay's final SHUTDOWN stops the router only; peers are
    // drained directly below.
    let served = serve_workload(&router_socket, workload.graphs());
    if served.is_err() {
        router_shutdown.shutdown();
    }
    let router_result = router_daemon
        .join()
        .map_err(|_| format!("scenario {:?}: router thread panicked", scenario.name));
    drain_fleet(&fleet_handles, fleet_daemons, &peer_sockets);
    let _ = std::fs::remove_file(&router_socket);
    let (records, stats) = served.map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;
    router_result?.map_err(|e| format!("scenario {:?}: router failed: {e}", scenario.name))?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    Ok(ScenarioReport {
        name: scenario.name.clone(),
        config: scenario.config_echo(),
        counters: assemble_counters(scenario, &records, &stats)?,
        wall_ms,
    })
}

/// Drains every peer daemon and unlinks its socket; failures are
/// swallowed because this also runs on error paths where the interesting
/// error is already in flight.
fn drain_fleet(
    handles: &[crate::server::ShutdownHandle],
    daemons: Vec<std::thread::JoinHandle<Result<(), crate::server::ServeError>>>,
    sockets: &[PathBuf],
) {
    for handle in handles {
        handle.shutdown();
    }
    for daemon in daemons {
        let _ = daemon.join();
    }
    for socket in sockets {
        let _ = std::fs::remove_file(socket);
    }
}

/// Runs every scenario of a suite through a routed fleet, in order, with
/// the same progress-callback shape as [`gc_harness::run_suite_with`].
pub fn run_suite_routed_with<F>(
    suite: Suite,
    peers: usize,
    mut progress: F,
) -> Result<MatrixReport, String>
where
    F: FnMut(&ScenarioReport),
{
    let mut scenarios = Vec::new();
    for scenario in suite.scenarios() {
        let report = run_scenario_routed(&scenario, peers)?;
        progress(&report);
        scenarios.push(report);
    }
    Ok(MatrixReport {
        schema_version: SCHEMA_VERSION,
        suite: suite.name().to_string(),
        scenarios,
    })
}

/// Runs every scenario of a suite through a routed fleet, in order.
pub fn run_suite_routed(suite: Suite, peers: usize) -> Result<MatrixReport, String> {
    run_suite_routed_with(suite, peers, |_| {})
}

/// What one served replay produces: per-query records (for run-counter
/// reconstruction) plus the daemon's settled global STATS payload.
type ReplayOutput = (Vec<QueryRecord>, Vec<(String, u64)>);

/// One client session: replay every query in order, then read the settled
/// global stats and ask the daemon to drain.
fn serve_workload<'a>(
    socket: &Path,
    graphs: impl Iterator<Item = &'a gc_graph::LabeledGraph>,
) -> Result<ReplayOutput, ClientError> {
    let mut client = connect_with_retry(socket)?;
    let mut records = Vec::new();
    // The ISSUE's parity bar: counters must stay byte-identical *with the
    // failure-handling paths enabled*. Every query carries a generous
    // deadline (never hit on these tiny scenarios) and goes through the
    // retry wrapper (BUSY never fires for one sequential client), so the
    // deadline and retry machinery is exercised without perturbing the
    // deterministic counter stream.
    let retry = RetryPolicy::default();
    for (i, graph) in graphs.enumerate() {
        let frame = QueryFrame {
            id: i as u64,
            graph: graph.clone(),
            kind: None,
            verify_budget: None,
            max_hits: None,
            bypass: false,
            timeout_ms: Some(60_000),
            allow: None,
        };
        match client.query_with_retry(frame, &retry)? {
            QueryOutcome::Result(result) => records.push(result.record),
            QueryOutcome::Busy { inflight, max } => {
                // One sequential client can never saturate the pool; a
                // BUSY here means the server is broken, not loaded.
                return Err(ClientError::Server {
                    code: "busy".into(),
                    msg: format!(
                        "sequential replay rejected with BUSY ({inflight}/{max} in flight)"
                    ),
                });
            }
        }
    }
    let stats = client.stats(StatsScope::Settle)?;
    client.shutdown()?;
    Ok((records, stats))
}

/// Connects to the daemon's socket, tolerating the small window between
/// `Server::bind` (socket exists) and the accept loop starting.
fn connect_with_retry(socket: &Path) -> Result<Client, ClientError> {
    let mut last = None;
    for _ in 0..200 {
        match Client::connect_unix(socket) {
            Ok(client) => return Ok(client),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
    Err(last.unwrap_or(ClientError::SessionClosed { reason: None }))
}

/// Runs every scenario of a suite through the daemon, in order, with the
/// same progress-callback shape as [`gc_harness::run_suite_with`].
pub fn run_suite_served_with<F>(suite: Suite, mut progress: F) -> Result<MatrixReport, String>
where
    F: FnMut(&ScenarioReport),
{
    let mut scenarios = Vec::new();
    for scenario in suite.scenarios() {
        let report = run_scenario_served(&scenario)?;
        progress(&report);
        scenarios.push(report);
    }
    Ok(MatrixReport {
        schema_version: SCHEMA_VERSION,
        suite: suite.name().to_string(),
        scenarios,
    })
}

/// Runs every scenario of a suite through the daemon, in order.
pub fn run_suite_served(suite: Suite) -> Result<MatrixReport, String> {
    run_suite_served_with(suite, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_harness::run_scenario;

    fn tiny(name: &str) -> Scenario {
        let mut s = Scenario::named(name);
        s.dataset_scale = 0.05;
        s.queries = 30;
        s.capacity = 12;
        s.window = 8;
        s.query_sizes = vec![4, 6];
        s.warmup = 5;
        s
    }

    /// The acceptance bar: served counters are byte-identical to the
    /// in-process runner's for the same scenario.
    #[test]
    fn served_counters_match_in_process() {
        let s = tiny("served-parity");
        let in_process = run_scenario(&s).expect("in-process run");
        let served = run_scenario_served(&s).expect("served run");
        assert_eq!(served.counters, in_process.counters);
        assert_eq!(served.config, in_process.config);
    }

    /// Parity holds on the budgeted/admission-gated path too, where the
    /// verification pool and admission threshold are live.
    #[test]
    fn served_counters_match_with_budget_and_admission() {
        let mut s = tiny("served-parity-budget");
        s.verify_budget = Some(400);
        s.admission = Some("adaptive".into());
        s.eviction = "gcr".into();
        let in_process = run_scenario(&s).expect("in-process run");
        let served = run_scenario_served(&s).expect("served run");
        assert_eq!(served.counters, in_process.counters);
    }

    /// Parity holds with the fragment layer live: the fragment counters in
    /// the RESULT frames and the fragment upkeep counters in STATS must be
    /// byte-identical to the in-process run.
    #[test]
    fn served_counters_match_with_fragments() {
        use gc_harness::WorkloadSpec;
        let mut s = tiny("served-parity-fragments");
        s.fragments = true;
        s.method = gc_methods::MethodKind::SiVf2;
        s.workload = WorkloadSpec::Zz(1.05);
        let in_process = run_scenario(&s).expect("in-process run");
        let served = run_scenario_served(&s).expect("served run");
        assert_eq!(served.counters, in_process.counters);
        assert!(
            in_process.counter("fragment_probes").unwrap_or(0) > 0,
            "the parity check must actually exercise the fragment path"
        );
    }

    /// The routed determinism gate, base case: a 1-peer fleet behind the
    /// router produces the in-process counters byte-identically.
    #[test]
    fn routed_counters_match_in_process_one_peer() {
        let s = tiny("routed-parity-1");
        let in_process = run_scenario(&s).expect("in-process run");
        let routed = run_scenario_routed(&s, 1).expect("routed run");
        assert_eq!(routed.counters, in_process.counters);
        assert_eq!(routed.config, in_process.config);
    }

    /// The routed determinism gate, tentpole case: a 3-peer fleet —
    /// probe fanout, allow-restricted queries, lockstep ROUTE replication
    /// — still produces the in-process counters byte-identically, because
    /// with all peers live the union of per-slice candidate sets is the
    /// full candidate set and the allow restriction is a no-op.
    #[test]
    fn routed_counters_match_in_process_three_peers() {
        let s = tiny("routed-parity-3");
        let in_process = run_scenario(&s).expect("in-process run");
        let routed = run_scenario_routed(&s, 3).expect("routed run");
        assert_eq!(routed.counters, in_process.counters);
    }
}
