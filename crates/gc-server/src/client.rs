//! A small blocking client for the `gc serve` protocol — what `gc ctl`,
//! `gc query --connect`, `gc bench --serve`, and the e2e tests speak
//! through. One [`Client`] is one session: it consumes the `HELLO`
//! greeting on connect and then exchanges strictly one reply per request
//! (the protocol never pushes unsolicited frames except the final `BYE`
//! during drain, which surfaces as [`ClientError::SessionClosed`]).

use crate::proto::{
    encode_request, parse_response, FrameEvent, FrameReader, ProtoError, QueryFrame, Request,
    Response, ResultFrame, StatsScope, PROTO_VERSION,
};
use crate::server::Conn;
use gc_graph::LabeledGraph;
use gc_methods::QueryKind;
use std::io::Write;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Bounded, deterministic retry/backoff for `BUSY` rejections and
/// transient connect failures. The protocol's contract is "the client
/// owns the retry" — this is that retry, with two properties the server
/// counters depend on:
///
/// * **Bounded**: at most `attempts` retries after the first try, so a
///   saturated or dead server fails fast instead of spinning forever.
/// * **Deterministic**: the backoff schedule (exponential with jitter) is
///   a pure function of `seed` and the attempt number — no wall-clock
///   randomness — so two replays with the same seed sleep identically
///   and served counter streams stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retry, plain `query`).
    pub attempts: u32,
    /// Backoff base: attempt `i` targets `base_delay_ms << i`.
    pub base_delay_ms: u64,
    /// Hard cap on any single backoff delay.
    pub max_delay_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` retries and the default backoff shape.
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            ..RetryPolicy::default()
        }
    }

    /// A policy with a caller-chosen jitter seed.
    pub fn seeded(attempts: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts,
            seed,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (0-based): exponential
    /// growth capped at `max_delay_ms`, landing in the upper half of the
    /// cap window via seeded xorshift jitter. Pure — same policy, same
    /// attempt, same delay.
    pub fn delay(&self, attempt: u32) -> Duration {
        let capped = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms);
        if capped == 0 {
            return Duration::ZERO;
        }
        // xorshift64* over (seed, attempt) — deterministic jitter with no
        // shared mutable state.
        let mut x = self.seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let jitter = x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (capped / 2 + 1);
        Duration::from_millis(capped - capped / 2 + jitter)
    }

    /// Whether a connect-time I/O failure is worth retrying: the errors a
    /// daemon mid-restart produces (socket file not there yet, listener
    /// not accepting yet). Anything else — permission, address in use by
    /// a live server, unreachable host — fails fast.
    pub fn transient_connect(err: &std::io::Error) -> bool {
        matches!(
            err.kind(),
            std::io::ErrorKind::ConnectionRefused
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::NotFound
                | std::io::ErrorKind::AddrNotAvailable
        )
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect refused, write to a closed socket, …).
    Io(std::io::Error),
    /// The server's reply did not parse.
    Proto(ProtoError),
    /// The server replied `ERR code=… msg=…`.
    Server {
        /// Stable error-code slug.
        code: String,
        /// Human-readable detail.
        msg: String,
    },
    /// The server closed the session (EOF or a `BYE` frame).
    SessionClosed {
        /// The `BYE` reason, when one was sent before closing.
        reason: Option<String>,
    },
    /// The server answered with a frame this request cannot accept.
    /// Boxed: `Response` is by far the largest payload, and every client
    /// call returns `Result<_, ClientError>` on the happy path.
    Unexpected(Box<Response>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, msg } => write!(f, "server error [{code}]: {msg}"),
            ClientError::SessionClosed { reason: Some(r) } => {
                write!(f, "session closed by server (reason: {r})")
            }
            ClientError::SessionClosed { reason: None } => write!(f, "session closed by server"),
            ClientError::Unexpected(resp) => {
                write!(
                    f,
                    "unexpected reply: {}",
                    crate::proto::encode_response(resp)
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// The outcome of [`Client::query`]: either a served result or a typed
/// backpressure rejection (the query did **not** run; retry when the
/// server has capacity).
#[derive(Debug)]
pub enum QueryOutcome {
    /// The query executed; here is its answer and record.
    Result(ResultFrame),
    /// The admission-permit pool was saturated.
    Busy {
        /// Permits in use at rejection time.
        inflight: u64,
        /// Pool size.
        max: u64,
    },
}

/// The outcome of [`Client::route`]: the replica applied the frame (and
/// reports the serial its counter stream assigned) or rejected it with
/// backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The replica executed the routed frame; its serial counter now
    /// stands at this value for the applied query.
    Applied(u64),
    /// The admission-permit pool was saturated; the frame did not run.
    Busy {
        /// Permits in use at rejection time.
        inflight: u64,
        /// Pool size.
        max: u64,
    },
}

/// The outcome of [`Client::hold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldOutcome {
    /// One permit is now held by this session.
    Held,
    /// The pool was already saturated; nothing was taken.
    Busy {
        /// Permits in use at rejection time.
        inflight: u64,
        /// Pool size.
        max: u64,
    },
}

/// One connected protocol session.
pub struct Client {
    conn: Conn,
    reader: FrameReader,
    session: u64,
    max_inflight: u64,
    server_proto: u64,
    peer: Option<(u64, u64)>,
    timeout: Option<Duration>,
}

impl Client {
    /// Connects over TCP and consumes the `HELLO` greeting.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        Client::greet(Conn::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects over a unix socket and consumes the `HELLO` greeting.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Client::greet(Conn::Unix(UnixStream::connect(path)?))
    }

    /// Connects over TCP, retrying transient failures (connection
    /// refused/reset) under the policy's deterministic backoff.
    pub fn connect_tcp_with_retry(addr: &str, policy: &RetryPolicy) -> Result<Client, ClientError> {
        Client::connect_with_retry(policy, || TcpStream::connect(addr).map(Conn::Tcp))
    }

    /// Connects over a unix socket, retrying transient failures (socket
    /// file missing or refusing) under the policy's deterministic backoff.
    pub fn connect_unix_with_retry(
        path: impl AsRef<Path>,
        policy: &RetryPolicy,
    ) -> Result<Client, ClientError> {
        let path = path.as_ref();
        Client::connect_with_retry(policy, || UnixStream::connect(path).map(Conn::Unix))
    }

    fn connect_with_retry(
        policy: &RetryPolicy,
        mut dial: impl FnMut() -> std::io::Result<Conn>,
    ) -> Result<Client, ClientError> {
        let mut attempt = 0u32;
        loop {
            match dial() {
                Ok(conn) => return Client::greet(conn),
                Err(e) if attempt < policy.attempts && RetryPolicy::transient_connect(&e) => {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    fn greet(conn: Conn) -> Result<Client, ClientError> {
        conn.set_read_timeout(None)?;
        let mut client = Client {
            conn,
            reader: FrameReader::new(),
            session: 0,
            max_inflight: 0,
            server_proto: 0,
            peer: None,
            timeout: None,
        };
        match client.recv()? {
            Response::Hello {
                proto,
                session,
                max_inflight,
                peer,
            } => {
                client.session = session;
                client.max_inflight = max_inflight;
                client.server_proto = proto;
                client.peer = peer;
                Ok(client)
            }
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The server's admission-permit pool size, from `HELLO`.
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight
    }

    /// The protocol version the server greeted with.
    pub fn server_proto(&self) -> u64 {
        self.server_proto
    }

    /// The server's routed-peer identity `(index, total)` from `HELLO`,
    /// when it serves as part of a fleet (`gc serve --peer-id`).
    pub fn peer(&self) -> Option<(u64, u64)> {
        self.peer
    }

    /// Announces this client's protocol version and returns the
    /// negotiated one (the minimum of both sides). Routed peers refuse
    /// `QUERY`/`PROBE`/`ROUTE` traffic from sessions that have not
    /// announced proto >= 4 — call this once right after connecting.
    pub fn announce(&mut self) -> Result<u64, ClientError> {
        match self.request(&Request::Version {
            proto: PROTO_VERSION,
        })? {
            Response::Version { proto } => Ok(proto),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Bounds every subsequent read on this session: when the server goes
    /// silent for `timeout`, the pending call fails with
    /// [`ClientError::Io`] of kind `TimedOut` instead of blocking forever.
    /// `None` restores fully blocking reads.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.conn.set_read_timeout(timeout)?;
        self.timeout = timeout;
        Ok(())
    }

    fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut line = encode_request(req);
        line.push('\n');
        self.conn.write_all(line.as_bytes())?;
        self.conn.flush()?;
        self.recv()
    }

    /// Reads the next server frame (blocking). `ERR` frames become
    /// [`ClientError::Server`]; `BYE`/EOF become
    /// [`ClientError::SessionClosed`].
    fn recv(&mut self) -> Result<Response, ClientError> {
        loop {
            match self.reader.poll_frame(&mut self.conn)? {
                FrameEvent::Frame(line) => {
                    return match parse_response(&line)? {
                        Response::Err { code, msg } => Err(ClientError::Server { code, msg }),
                        Response::Bye { reason } => Err(ClientError::SessionClosed {
                            reason: Some(reason),
                        }),
                        other => Ok(other),
                    }
                }
                FrameEvent::Closed => return Err(ClientError::SessionClosed { reason: None }),
                // Idle means the OS read timeout elapsed without bytes.
                // With a caller-set deadline that is the failure; without
                // one it is a spurious wakeup — keep waiting.
                FrameEvent::Idle => {
                    if self.timeout.is_some() {
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "server did not reply within the configured timeout",
                        )));
                    }
                    continue;
                }
            }
        }
    }

    /// `PING` round-trip; the token (when given) must echo back.
    pub fn ping(&mut self, token: Option<&str>) -> Result<(), ClientError> {
        let resp = self.request(&Request::Ping(token.map(str::to_string)))?;
        match resp {
            Response::Pong(echo) if echo.as_deref() == token => Ok(()),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Submits one query; `BUSY` is a normal outcome, not an error.
    pub fn query(&mut self, frame: QueryFrame) -> Result<QueryOutcome, ClientError> {
        let id = frame.id;
        match self.request(&Request::Query(frame))? {
            Response::Result(r) if r.id == id => Ok(QueryOutcome::Result(r)),
            Response::Busy {
                id: busy_id,
                inflight,
                max,
            } if busy_id == id => Ok(QueryOutcome::Busy { inflight, max }),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Submits one query, retrying `BUSY` rejections under `policy`.
    /// Every retry resubmits the identical frame, so the executed query —
    /// and therefore the server's deterministic counter stream — is
    /// byte-identical to a non-retried submission that was admitted first
    /// try. Returns the final `Busy` when the budget is exhausted; real
    /// errors (transport, protocol, `ERR`) are never retried.
    ///
    /// ```no_run
    /// use gc_server::{Client, QueryFrame, QueryOutcome, RetryPolicy};
    /// use gc_graph::LabeledGraph;
    ///
    /// let mut client = Client::connect_unix("/tmp/gc.sock")?;
    /// let frame = QueryFrame {
    ///     id: 1,
    ///     graph: LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
    ///     kind: None,
    ///     verify_budget: None,
    ///     max_hits: None,
    ///     bypass: false,
    ///     timeout_ms: Some(60_000),
    ///     allow: None,
    /// };
    /// match client.query_with_retry(frame, &RetryPolicy::with_attempts(5))? {
    ///     QueryOutcome::Result(r) => println!("{} answer graphs", r.answer.len()),
    ///     QueryOutcome::Busy { inflight, max } => eprintln!("saturated: {inflight}/{max}"),
    /// }
    /// # Ok::<(), gc_server::ClientError>(())
    /// ```
    pub fn query_with_retry(
        &mut self,
        frame: QueryFrame,
        policy: &RetryPolicy,
    ) -> Result<QueryOutcome, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.query(frame.clone())? {
                QueryOutcome::Busy { .. } if attempt < policy.attempts => {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                outcome => return Ok(outcome),
            }
        }
    }

    /// `PROBE`: asks the server which cached-entry serials are hit
    /// candidates for `graph` under `kind`. A fleet peer reports only the
    /// candidates whose entry fingerprints fall in its ring slice; the
    /// router unions the slices back into the full candidate set.
    pub fn probe(
        &mut self,
        id: u64,
        graph: LabeledGraph,
        kind: Option<QueryKind>,
    ) -> Result<Vec<u64>, ClientError> {
        match self.request(&Request::Probe { id, graph, kind })? {
            Response::Cands { id: got, cands } if got == id => Ok(cands),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Submits one `ROUTE` apply frame — the router's replication path.
    /// The replica executes the query exactly as a `QUERY` would (its
    /// cache state and serial counter must advance in lockstep with the
    /// owner's) but acknowledges with the compact `ROUTED` frame.
    pub fn route(&mut self, frame: QueryFrame) -> Result<RouteOutcome, ClientError> {
        let id = frame.id;
        match self.request(&Request::Route(frame))? {
            Response::Routed { id: got, serial } if got == id => Ok(RouteOutcome::Applied(serial)),
            Response::Busy {
                id: busy_id,
                inflight,
                max,
            } if busy_id == id => Ok(RouteOutcome::Busy { inflight, max }),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// [`Client::route`] with `BUSY` retries under `policy`, mirroring
    /// [`Client::query_with_retry`].
    pub fn route_with_retry(
        &mut self,
        frame: QueryFrame,
        policy: &RetryPolicy,
    ) -> Result<RouteOutcome, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.route(frame.clone())? {
                RouteOutcome::Busy { .. } if attempt < policy.attempts => {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                outcome => return Ok(outcome),
            }
        }
    }

    /// Reads a counter snapshot.
    pub fn stats(&mut self, scope: StatsScope) -> Result<Vec<(String, u64)>, ClientError> {
        match self.request(&Request::Stats(scope))? {
            Response::Stats(counters) => Ok(counters),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Takes one admission permit (operator quiesce). `BUSY` means the
    /// pool was already saturated.
    pub fn hold(&mut self) -> Result<HoldOutcome, ClientError> {
        match self.request(&Request::Hold)? {
            Response::Held => Ok(HoldOutcome::Held),
            Response::Busy { inflight, max, .. } => Ok(HoldOutcome::Busy { inflight, max }),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Returns the permit taken by [`Client::hold`].
    pub fn release(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Release)? {
            Response::Released => Ok(()),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Requests graceful drain. The server acknowledges with
    /// `BYE reason=shutdown` and closes this session, so the expected
    /// "error" is [`ClientError::SessionClosed`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown) {
            Err(ClientError::SessionClosed { .. }) => Ok(()),
            Ok(other) => Err(ClientError::Unexpected(Box::new(other))),
            Err(e) => Err(e),
        }
    }

    /// Ends this session politely.
    pub fn quit(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Quit) {
            Err(ClientError::SessionClosed { .. }) => Ok(()),
            Ok(other) => Err(ClientError::Unexpected(Box::new(other))),
            Err(e) => Err(e),
        }
    }
}
