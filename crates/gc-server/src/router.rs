//! `gc route` — the fingerprint-routing front-end for a fleet of
//! `gc serve` peers.
//!
//! # Routed replication
//!
//! Every peer holds a **full replica** of the cache and advances it in
//! lockstep by deterministic re-execution; what is partitioned across the
//! fleet is not cache *state* but cache *lookup work*. The [`Ring`]
//! assigns each 64-bit iso-fingerprint
//! ([`gc_index::fingerprint::iso_hash`]) an owning peer; the [`Router`]
//! computes each query's fingerprint locally and:
//!
//! 1. **Exact repeat, owner live** — the fingerprint was routed before,
//!    so the owner is guaranteed to answer it from its exact-match probe:
//!    skip the fanout entirely (`routed_exact`, the O(1) fast path) and
//!    send the `QUERY` unrestricted.
//! 2. **First sight** — `PROBE` every live peer; each returns the
//!    candidate serials whose *entry* fingerprints fall in its ring
//!    slice. The merged union is attached to the owner's `QUERY` (and to
//!    every replica's `ROUTE`) as `allow=`. With all peers live the union
//!    is the full candidate set, so the restriction is a no-op — which is
//!    exactly why a 1-peer and an N-peer fleet produce byte-identical
//!    deterministic counters. With a peer dead, its slice is simply
//!    missing: hits it would have contributed become misses (restriction
//!    only ever *removes* candidates, so degraded answers stay correct).
//! 3. **Replication** — the owner executes the `QUERY` authoritatively;
//!    every other live peer gets the same frame as a `ROUTE` apply and
//!    must report the same serial. A replica that desyncs, saturates, or
//!    drops the connection is degraded out of the fleet (`peer_misses`).
//! 4. **Dead owner** — no peer holds authority for the fingerprint, so
//!    the query executes cache-bypassed on every live replica (serials
//!    advance identically, cache state does not change) and the answer
//!    comes from the first live replica: a degraded *miss-only* slice,
//!    not an outage.
//!
//! The router serializes all query traffic through one mutex — it is the
//! fleet's global sequencer, which is what makes "deterministic
//! re-execution" well-defined across replicas.
//!
//! # Caveat: deadlines on a routed fleet
//!
//! A `timeout=` deadline abort is wall-clock-dependent: the owner may
//! abort where a replica completes (or vice versa), desynchronising
//! cache admission across the fleet. The router still broadcasts the
//! frame — serial counters stay in lockstep either way — but
//! deterministic-parity gates must use deadlines that never fire (the
//! committed smoke baseline uses 60s). See `docs/operations.md`.

use crate::client::{Client, ClientError, QueryOutcome, RetryPolicy, RouteOutcome};
use crate::proto::{
    encode_response, parse_request, FrameEvent, FrameReader, QueryFrame, Request, Response,
    StatsScope, PROTO_VERSION,
};
use crate::server::{signal, Conn, ServeError, POLL_INTERVAL};
use gc_core::RouteCounters;
use gc_index::fingerprint::iso_hash;
use std::collections::HashSet;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Virtual nodes per peer on the consistent-hash ring. 64 vnodes keep
/// slice sizes within a few percent of even for small fleets while the
/// ring stays tiny (N×64 points).
const VNODES_PER_PEER: u64 = 64;

/// Read deadline on router→peer calls: a wedged peer is degraded out of
/// the fleet instead of wedging the router with it.
const PEER_CALL_TIMEOUT: Duration = Duration::from_secs(120);

/// This daemon's identity inside a routed fleet: peer `index` of `total`.
///
/// Carried in `ServeConfig::peer` (the `gc serve --peer-id I/N` flag),
/// advertised in `HELLO peer=I/N`, and used to filter `PROBE` replies to
/// the ring slice this peer owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerIdentity {
    /// Zero-based peer index.
    pub index: u64,
    /// Fleet size.
    pub total: u64,
}

impl PeerIdentity {
    /// A validated identity: `index` must be in `0..total`.
    pub fn new(index: u64, total: u64) -> Option<PeerIdentity> {
        (total >= 1 && index < total).then_some(PeerIdentity { index, total })
    }
}

/// SplitMix64 — a bijective 64-bit mixer, so distinct vnode seeds can
/// never collide on the ring.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fleet's consistent-hash ring over the 64-bit fingerprint space.
///
/// Deterministic in `total` alone: every router and every peer of an
/// N-peer fleet computes the identical ring, so ownership decisions need
/// no coordination. A fingerprint is owned by the peer of the first ring
/// point at or after it (wrapping).
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, peer)` sorted by point; points are distinct because the
    /// mixer is bijective over distinct `(peer, vnode)` seeds.
    points: Vec<(u64, u64)>,
}

impl Ring {
    /// The ring for a fleet of `total` peers (panics on `total == 0`).
    pub fn new(total: u64) -> Ring {
        assert!(total >= 1, "a fleet has at least one peer");
        let mut points = Vec::with_capacity((total * VNODES_PER_PEER) as usize);
        for peer in 0..total {
            for vnode in 0..VNODES_PER_PEER {
                points.push((splitmix64((peer << 32) | vnode), peer));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The peer index owning `fingerprint`.
    ///
    /// ```
    /// use gc_server::router::Ring;
    ///
    /// let ring = Ring::new(3);
    /// assert!(ring.owner(0x1234_5678_9abc_def0) < 3);
    /// // Deterministic: any party computing the ring agrees.
    /// assert_eq!(ring.owner(42), Ring::new(3).owner(42));
    /// ```
    pub fn owner(&self, fingerprint: u64) -> u64 {
        let at = self
            .points
            .partition_point(|&(point, _)| point < fingerprint);
        let at = if at == self.points.len() { 0 } else { at };
        self.points[at].1
    }
}

/// Router configuration — the knobs behind `gc route`'s flags.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The unix socket the router serves clients on.
    pub unix: PathBuf,
    /// Peer sockets in peer-index order: `peers[i]` must be the daemon
    /// started with `--peer-id i/N`.
    pub peers: Vec<PathBuf>,
    /// Retry/backoff for peer connects, `BUSY` rejections, and routed
    /// applies (shared with the client-facing contract, see
    /// [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Install SIGTERM/SIGINT handlers that trigger graceful drain.
    pub handle_signals: bool,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            unix: PathBuf::new(),
            peers: Vec::new(),
            retry: RetryPolicy::default(),
            handle_signals: false,
        }
    }
}

/// One router→peer link. `client: None` means the peer is dead and its
/// ring slice is degraded (miss-only) until the fleet restarts — a
/// restarted peer would hold a stale replica, so the router never
/// reconnects on its own.
struct PeerLink {
    path: PathBuf,
    client: Option<Client>,
}

/// The routing state behind the sequencer mutex.
struct RouteState {
    peers: Vec<PeerLink>,
    ring: Ring,
    retry: RetryPolicy,
    /// Fingerprints of queries already routed fleet-wide: membership
    /// proves the owner answers the repeat from its exact probe, so the
    /// fanout can be skipped.
    seen: HashSet<u64>,
    counters: RouteCounters,
}

impl RouteState {
    fn live_peers(&self) -> u64 {
        self.peers.iter().filter(|p| p.client.is_some()).count() as u64
    }

    /// Degrades a peer out of the fleet after a failed interaction.
    fn mark_dead(&mut self, idx: usize) {
        if let Some(link) = self.peers.get_mut(idx) {
            if link.client.take().is_some() {
                eprintln!(
                    "gc route: peer {idx} ({}) unreachable or desynced; \
                     its slice degrades to miss-only",
                    link.path.display()
                );
            }
        }
        self.counters.peer_misses += 1;
    }

    /// Routes one query (the sequencer mutex is held by the caller).
    fn route_query(&mut self, frame: QueryFrame) -> Response {
        let fp = iso_hash(&frame.graph);
        let owner = self.ring.owner(fp) as usize;

        if self.peers[owner].client.is_none() {
            self.counters.peer_misses += 1;
            return self.degraded_execute(frame);
        }

        // Build the allow restriction. `None` means unrestricted — used
        // both for bypass frames (no sweep happens) and for exact repeats
        // (the owner's exact probe ignores the allow filter anyway).
        let allow = if frame.bypass {
            None
        } else if self.seen.contains(&fp) {
            self.counters.routed_exact += 1;
            None
        } else {
            let mut merged = Vec::new();
            for idx in 0..self.peers.len() {
                let Some(client) = self.peers[idx].client.as_mut() else {
                    continue;
                };
                match client.probe(frame.id, frame.graph.clone(), frame.kind) {
                    Ok(cands) => {
                        self.counters.fanout_probes += 1;
                        merged.extend(cands);
                    }
                    Err(_) => self.mark_dead(idx),
                }
            }
            if self.peers[owner].client.is_none() {
                // The owner died during the fanout.
                return self.degraded_execute(frame);
            }
            merged.sort_unstable();
            merged.dedup();
            Some(merged)
        };

        let mut owner_frame = frame.clone();
        owner_frame.allow = allow.clone();
        let retry = self.retry;
        let outcome = self.peers[owner]
            .client
            .as_mut()
            .expect("owner checked live")
            .query_with_retry(owner_frame, &retry);
        let (reply, owner_serial) = match outcome {
            Ok(QueryOutcome::Result(r)) => {
                let serial = r.serial;
                (Response::Result(r), Some(serial))
            }
            // BUSY after retries: the owner never executed, so no replica
            // may either — propagate and leave the fleet untouched.
            Ok(QueryOutcome::Busy { inflight, max }) => {
                return Response::Busy {
                    id: frame.id,
                    inflight,
                    max,
                };
            }
            // A typed error (deadline) means the owner DID execute — its
            // serial advanced and the record was tallied — so replicas
            // must still apply the frame to stay in lockstep.
            Err(ClientError::Server { code, msg }) => (Response::Err { code, msg }, None),
            Err(_) => {
                // Transport failure mid-query: whether the owner applied
                // the frame is unknowable. Drop it and serve degraded.
                self.mark_dead(owner);
                return self.degraded_execute(frame);
            }
        };

        let mut routed_frame = frame.clone();
        routed_frame.allow = allow;
        self.broadcast_route(&routed_frame, owner, owner_serial);
        if !frame.bypass {
            self.seen.insert(fp);
        }
        reply
    }

    /// Applies `frame` on every live peer except `skip`, checking serial
    /// agreement where the owner's serial is known. A replica that
    /// saturates, errors, or reports a different serial has diverged from
    /// the fleet and is degraded out.
    fn broadcast_route(&mut self, frame: &QueryFrame, skip: usize, expect_serial: Option<u64>) {
        let retry = self.retry;
        for idx in 0..self.peers.len() {
            if idx == skip {
                continue;
            }
            let Some(client) = self.peers[idx].client.as_mut() else {
                continue;
            };
            let in_lockstep = match client.route_with_retry(frame.clone(), &retry) {
                Ok(RouteOutcome::Applied(serial)) => {
                    expect_serial.is_none_or(|expect| expect == serial)
                }
                // The replica hit the same deadline the owner did; its
                // serial still advanced.
                Err(ClientError::Server { ref code, .. }) if code == "deadline" => true,
                Ok(RouteOutcome::Busy { .. }) | Err(_) => false,
            };
            if !in_lockstep {
                self.mark_dead(idx);
            }
        }
    }

    /// Dead-owner path: no peer holds authority for this fingerprint, so
    /// the query executes **cache-bypassed** on every live replica —
    /// serials advance identically while no replica's cache state changes
    /// — and the answer comes from the first live replica. The
    /// fingerprint is *not* recorded as seen: repeats must take this
    /// degraded (miss-only) path for as long as the owner stays dead.
    fn degraded_execute(&mut self, frame: QueryFrame) -> Response {
        let mut bypass_frame = frame.clone();
        bypass_frame.bypass = true;
        bypass_frame.allow = None;
        let retry = self.retry;
        loop {
            let Some(first) = self.peers.iter().position(|p| p.client.is_some()) else {
                return Response::Err {
                    code: "degraded".into(),
                    msg: "no live peers: every slice of the fingerprint space is down".into(),
                };
            };
            let outcome = self.peers[first]
                .client
                .as_mut()
                .expect("position found a live peer")
                .query_with_retry(bypass_frame.clone(), &retry);
            match outcome {
                Ok(QueryOutcome::Result(r)) => {
                    let serial = r.serial;
                    self.broadcast_route(&bypass_frame, first, Some(serial));
                    return Response::Result(r);
                }
                // Nothing has executed anywhere yet — propagate BUSY.
                Ok(QueryOutcome::Busy { inflight, max }) => {
                    return Response::Busy {
                        id: frame.id,
                        inflight,
                        max,
                    };
                }
                Err(ClientError::Server { code, msg }) => {
                    // Executed but answered with a typed error (deadline):
                    // keep the replicas in lockstep, then forward it.
                    self.broadcast_route(&bypass_frame, first, None);
                    return Response::Err { code, msg };
                }
                Err(_) => {
                    self.mark_dead(first);
                    // Try the next live replica.
                }
            }
        }
    }

    /// Fleet STATS: the counter snapshot of the lowest-indexed live peer
    /// (all replicas agree while in lockstep) plus the router's own
    /// routing counters and fleet-health gauges appended as extra keys.
    fn stats_reply(&mut self, scope: StatsScope) -> Response {
        let mut counters: Vec<(String, u64)> = Vec::new();
        while let Some(first) = self.peers.iter().position(|p| p.client.is_some()) {
            match self.peers[first]
                .client
                .as_mut()
                .expect("position found a live peer")
                .stats(scope)
            {
                Ok(peer_counters) => {
                    counters = peer_counters;
                    break;
                }
                Err(_) => self.mark_dead(first),
            }
        }
        for (key, value) in self.counters.stats_counters() {
            counters.push((key.to_string(), value));
        }
        counters.push(("peers_live".to_string(), self.live_peers()));
        counters.push(("peers_total".to_string(), self.peers.len() as u64));
        Response::Stats(counters)
    }
}

/// State shared between the accept loop and router sessions.
struct RouterShared {
    /// The sequencer: all routed queries serialize through this mutex,
    /// which is what makes deterministic re-execution well-defined.
    state: Mutex<RouteState>,
    draining: AtomicBool,
    next_session: AtomicU64,
}

impl RouterShared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::TERMINATE.load(Ordering::SeqCst)
    }
}

/// Requests router drain from outside the protocol (tests, embedders).
#[derive(Clone)]
pub struct RouterShutdownHandle {
    shared: Arc<RouterShared>,
}

impl RouterShutdownHandle {
    /// Flips the drain flag, as `SHUTDOWN`/SIGTERM would. Stops only the
    /// router — peers keep serving and are drained directly.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

/// A bound-but-not-yet-running router. Like `Server`, binding and running
/// are separate so callers can connect the moment `bind` returns.
///
/// ```
/// use gc_server::router::{Router, RouterConfig};
/// use gc_server::RetryPolicy;
///
/// let sock = std::env::temp_dir().join(format!("gc-route-doc-{}.sock", std::process::id()));
/// let cfg = RouterConfig {
///     unix: sock.clone(),
///     peers: vec!["/nonexistent/peer-0.sock".into()],
///     retry: RetryPolicy::with_attempts(0),
///     handle_signals: false,
/// };
/// // A dead peer at bind time is a degraded slice, not a bind failure.
/// let router = Router::bind(cfg).unwrap();
/// let handle = router.shutdown_handle();
/// handle.shutdown(); // `router.run()` would now return immediately
/// # std::fs::remove_file(&sock).ok();
/// ```
pub struct Router {
    listener: UnixListener,
    unix_path: PathBuf,
    shared: Arc<RouterShared>,
    handle_signals: bool,
}

impl Router {
    /// Binds the router socket and dials every peer in index order.
    ///
    /// Each live peer must greet with `HELLO peer=i/N` matching its
    /// position in `cfg.peers` — a mismatch is a misconfiguration and
    /// fails the bind. A peer that cannot be reached at all is degraded
    /// (its slice serves misses), not fatal.
    pub fn bind(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.peers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no peers configured (need at least one --peer)",
            ));
        }
        let total = cfg.peers.len() as u64;
        let mut peers = Vec::with_capacity(cfg.peers.len());
        for (idx, path) in cfg.peers.iter().enumerate() {
            let client = match Client::connect_unix_with_retry(path, &cfg.retry) {
                Ok(mut client) => {
                    match client.peer() {
                        Some((index, fleet)) if index == idx as u64 && fleet == total => {}
                        Some((index, fleet)) => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                format!(
                                    "peer {} ({}) identifies as {index}/{fleet}, expected {idx}/{total}",
                                    idx,
                                    path.display()
                                ),
                            ));
                        }
                        None => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                format!(
                                    "daemon at {} is not a routed peer (start it with --peer-id {idx}/{total})",
                                    path.display()
                                ),
                            ));
                        }
                    }
                    client.set_timeout(Some(PEER_CALL_TIMEOUT)).ok();
                    match client.announce() {
                        Ok(_) => Some(client),
                        Err(_) => None,
                    }
                }
                Err(_) => None,
            };
            if client.is_none() {
                eprintln!(
                    "gc route: peer {idx} ({}) is unreachable at bind; \
                     its slice starts degraded (miss-only)",
                    path.display()
                );
            }
            peers.push(PeerLink {
                path: path.clone(),
                client,
            });
        }

        // Same stale-socket ownership probe as the serve daemon.
        if cfg.unix.exists() {
            match UnixStream::connect(&cfg.unix) {
                Ok(_probe) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("socket {} is served by a live daemon", cfg.unix.display()),
                    ));
                }
                Err(_) => {
                    let _ = std::fs::remove_file(&cfg.unix);
                }
            }
        }
        let listener = UnixListener::bind(&cfg.unix)?;
        listener.set_nonblocking(true)?;

        Ok(Router {
            listener,
            unix_path: cfg.unix,
            shared: Arc::new(RouterShared {
                state: Mutex::new(RouteState {
                    peers,
                    ring: Ring::new(total),
                    retry: cfg.retry,
                    seen: HashSet::new(),
                    counters: RouteCounters::default(),
                }),
                draining: AtomicBool::new(false),
                next_session: AtomicU64::new(1),
            }),
            handle_signals: cfg.handle_signals,
        })
    }

    /// A handle that can request drain from another thread.
    pub fn shutdown_handle(&self) -> RouterShutdownHandle {
        RouterShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until drain, then unwinds sessions and
    /// unlinks the router socket. Peers are left running.
    pub fn run(self) -> Result<(), ServeError> {
        if self.handle_signals {
            signal::install();
        }
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
                    workers.push(std::thread::spawn(move || {
                        serve_session(shared, id, Conn::Unix(stream));
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(ServeError::Io(e)),
            }
            workers.retain(|h| !h.is_finished());
        }
        drop(self.listener);
        for handle in workers {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.unix_path);
        Ok(())
    }
}

fn send(conn: &mut Conn, resp: &Response) -> std::io::Result<()> {
    let mut line = encode_response(resp);
    line.push('\n');
    conn.write_all(line.as_bytes())?;
    conn.flush()
}

/// One client session on the router: greet, then answer frames until the
/// client leaves, a transport error, or drain.
fn serve_session(shared: Arc<RouterShared>, id: u64, mut conn: Conn) {
    if conn.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let hello = Response::Hello {
        proto: PROTO_VERSION,
        session: id,
        // The sequencer mutex admits one routed query at a time.
        max_inflight: 1,
        peer: None,
    };
    if send(&mut conn, &hello).is_err() {
        return;
    }
    let mut reader = FrameReader::new();
    loop {
        if shared.draining() {
            let _ = send(
                &mut conn,
                &Response::Bye {
                    reason: "draining".into(),
                },
            );
            return;
        }
        let line = match reader.poll_frame(&mut conn) {
            Ok(FrameEvent::Frame(line)) => line,
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Closed) => return,
            Err(err) => {
                let _ = send(
                    &mut conn,
                    &Response::Err {
                        code: err.code().into(),
                        msg: err.to_string(),
                    },
                );
                return;
            }
        };
        let req = match parse_request(&line) {
            Ok(req) => req,
            Err(err) => {
                let reply = Response::Err {
                    code: err.code().into(),
                    msg: err.to_string(),
                };
                if send(&mut conn, &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        let done = matches!(req, Request::Quit | Request::Shutdown);
        if answer(&shared, &mut conn, req).is_err() || done {
            return;
        }
    }
}

fn answer(shared: &RouterShared, conn: &mut Conn, req: Request) -> std::io::Result<()> {
    match req {
        Request::Ping(token) => send(conn, &Response::Pong(token)),
        Request::Version { proto } => send(
            conn,
            &Response::Version {
                proto: proto.min(PROTO_VERSION),
            },
        ),
        Request::Query(frame) => {
            let reply = shared
                .state
                .lock()
                .expect("router state")
                .route_query(frame);
            send(conn, &reply)
        }
        Request::Stats(scope) => {
            let reply = shared
                .state
                .lock()
                .expect("router state")
                .stats_reply(scope);
            send(conn, &reply)
        }
        Request::Probe { .. } | Request::Route(..) => send(
            conn,
            &Response::Err {
                code: "unsupported".into(),
                msg: "the router originates PROBE/ROUTE; clients send QUERY".into(),
            },
        ),
        Request::Hold | Request::Release => send(
            conn,
            &Response::Err {
                code: "unsupported".into(),
                msg: "HOLD/RELEASE are per-peer quiesce levers; address a peer directly".into(),
            },
        ),
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            send(
                conn,
                &Response::Bye {
                    reason: "shutdown".into(),
                },
            )
        }
        Request::Quit => send(
            conn,
            &Response::Bye {
                reason: "quit".into(),
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic() {
        let a = Ring::new(5);
        let b = Ring::new(5);
        for fp in [0u64, 1, 42, u64::MAX, 0x9e37_79b9_7f4a_7c15] {
            assert_eq!(a.owner(fp), b.owner(fp));
        }
    }

    #[test]
    fn ring_covers_every_fingerprint_and_partitions_them() {
        let ring = Ring::new(3);
        let mut hit = [0u64; 3];
        // A fingerprint-space sweep: every probe resolves to exactly one
        // valid peer, and with 64 vnodes per peer none of the three
        // slices is empty.
        let mut fp = 0x0123_4567_89ab_cdefu64;
        for _ in 0..4096 {
            fp = splitmix64(fp);
            let owner = ring.owner(fp);
            assert!(owner < 3, "owner {owner} out of range");
            hit[owner as usize] += 1;
        }
        assert!(hit.iter().all(|&count| count > 0), "empty slice: {hit:?}");
    }

    #[test]
    fn ring_of_one_owns_everything() {
        let ring = Ring::new(1);
        for fp in [0u64, 7, u64::MAX] {
            assert_eq!(ring.owner(fp), 0);
        }
    }

    #[test]
    fn peer_identity_validates_bounds() {
        assert!(PeerIdentity::new(0, 1).is_some());
        assert!(PeerIdentity::new(2, 3).is_some());
        assert!(PeerIdentity::new(3, 3).is_none());
        assert!(PeerIdentity::new(0, 0).is_none());
    }

    #[test]
    fn router_refuses_an_empty_fleet() {
        let err = Router::bind(RouterConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
