//! `gc-server` — the long-running GraphCache daemon behind `gc serve`.
//!
//! GraphCache is a *caching system*: the paper positions it in front of a
//! subgraph-query engine absorbing sustained query traffic from many
//! clients, not as a one-shot batch tool. This crate supplies that
//! missing deployment shape. A [`Server`] owns one shared
//! [`gc_core::GraphCache`] and listens on TCP and/or a unix socket; each
//! connection is a session speaking a hand-rolled line-delimited text
//! protocol ([`proto`]) whose `QUERY` frames are decoded into
//! [`gc_core::QueryRequest`]s, multiplexed onto the shared cache, and
//! answered with framed results carrying the deterministic
//! [`gc_core::QueryRecord`] counters.
//!
//! The pieces:
//!
//! * [`proto`] — the wire format: frames, the graph codec, the
//!   incremental [`proto::FrameReader`], typed [`proto::ProtoError`]s;
//! * [`server`] — the daemon: listeners, sessions, the admission-permit
//!   pool (`BUSY` backpressure, never unbounded queueing), `STATS`
//!   introspection, and `SHUTDOWN`/SIGTERM graceful drain with optional
//!   snapshot persistence;
//! * [`client`] — a small blocking [`Client`] used by `gc ctl`,
//!   `gc query --connect`, and the tests;
//! * [`router`] — `gc route`: the fingerprint-routing front-end that
//!   fans one query stream across a fleet of routed peers (consistent
//!   hashing over iso-fingerprints, probe fanout, lockstep replication);
//! * [`mod@bench`] — served-mode suite execution for `gc bench --serve`
//!   and `gc bench --route`, which pins the acceptance bar: counters
//!   served over the socket — through one daemon or a routed fleet —
//!   are byte-identical to the in-process runner's for the same seeds.
//!
//! The one `unsafe` block in the workspace lives here, fenced inside
//! `server::signal`: a two-line `signal(2)` binding (std has no signal
//! API and the offline build has no libc crate), so the crate carries
//! `deny(unsafe_code)` with a scoped allow instead of the usual `forbid`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod proto;
pub mod router;
pub mod server;

pub use client::{Client, ClientError, HoldOutcome, QueryOutcome, RetryPolicy, RouteOutcome};
pub use proto::{
    FrameReader, ProtoError, QueryFrame, Request, Response, ResultFrame, StatsScope,
    MAX_FRAME_BYTES, PROTO_VERSION,
};
pub use router::{PeerIdentity, Ring, Router, RouterConfig, RouterShutdownHandle};
pub use server::{ServeConfig, ServeError, Server, ShutdownHandle};
