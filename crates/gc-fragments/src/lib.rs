//! Sub-query fragment cache for GraphCache.
//!
//! GraphCache's whole-query hit classes (exact / subgraph / supergraph) only
//! pay off when a cached answer subsumes the query; on low-repetition
//! workloads the hit rate collapses to near zero even though consecutive
//! queries share most of their *structure*. This crate adds the missing hit
//! class: queries are decomposed into canonical **path fragments** (label
//! sequences along simple paths, the same features GraphGrepSX/Grapes index),
//! and a bounded [`FragmentStore`] maps each fragment's isomorphism-invariant
//! fingerprint to the **exact set of dataset graphs containing it**. On a
//! whole-query miss the surviving fragments' occurrence sets are intersected
//! into the matcher's candidate set before verification.
//!
//! # Soundness
//!
//! For a subgraph query `g` and any fragment `f ⊆ g`: every dataset graph
//! `G ⊇ g` also satisfies `G ⊇ f`, so `answers(g) ⊆ occ(f)`. Intersecting
//! the candidate set with `occ(f)` therefore only removes graphs that could
//! never be answers — fragment pruning can shrink the verification frontier
//! but never the answer. Two requirements keep the argument airtight:
//!
//! 1. `occ(f)` must be **exact** (it is the verified occurrence set, built by
//!    running the fragment as its own sub-query through the filter+verify
//!    method — never a filter-only candidate superset of unknown polarity).
//! 2. A fragment set truncated by the enumeration work cap is **unusable**:
//!    [`decompose`] returns `None` on [`LocatedProfile::Overflow`] and the
//!    caller must skip fragment pruning for that query entirely.
//!
//! # Keying
//!
//! The fragment key is [`iso_hash`] of the fragment's path graph — the same
//! 1-WL iso-invariant fingerprint the cache's exact-match fast path uses.
//! A label sequence and its reverse describe isomorphic paths and thus
//! collide onto one key, which is exactly the canonicalisation we want.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gc_graph::idset;
use gc_graph::{GraphId, Label, LabeledGraph};
use gc_index::fingerprint::iso_hash;
use gc_index::fx::FxHashMap;
use gc_index::paths::{enumerate_paths_located, LocatedProfile};

/// Tuning knobs for fragment decomposition and the store budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentConfig {
    /// Minimum fragment length in edges. Single-edge fragments are almost
    /// never selective (their occurrence sets approach the whole dataset),
    /// so the default starts at 2.
    pub min_len: usize,
    /// Maximum fragment length in edges.
    pub max_len: usize,
    /// At most this many (deterministically ranked) fragments per query.
    pub max_per_query: usize,
    /// At most this many new fragments built per maintenance round — each
    /// build runs the fragment as a sub-query, so this caps matcher work
    /// done off the query path.
    pub max_build_per_round: usize,
    /// Work cap for path enumeration; exceeding it makes the query's
    /// fragment set unusable (see crate docs on soundness).
    pub work_cap: u64,
    /// Byte budget for the fragment store; maintenance evicts down to it.
    pub budget_bytes: usize,
}

impl Default for FragmentConfig {
    fn default() -> Self {
        FragmentConfig {
            min_len: 2,
            max_len: 4,
            max_per_query: 8,
            max_build_per_round: 16,
            work_cap: 200_000,
            budget_bytes: 1 << 20,
        }
    }
}

/// One canonical fragment of a query: the path graph plus its key.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Iso-invariant fingerprint of [`Fragment::graph`].
    pub key: u64,
    /// The fragment as a standalone path graph.
    pub graph: LabeledGraph,
}

/// Builds the path graph for a label sequence: nodes `0..n` labelled by the
/// sequence, edges `(i, i+1)`.
fn path_graph(labels: &[Label]) -> LabeledGraph {
    let edges: Vec<(u32, u32)> = (0..labels.len().saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    LabeledGraph::from_parts(labels.to_vec(), &edges)
}

/// Decomposes a query into its ranked canonical path fragments.
///
/// Returns `None` when path enumeration exceeds `cfg.work_cap` — a truncated
/// profile must never be treated as complete, so the caller has to disable
/// fragment probing for that query (soundness requirement 2 in the crate
/// docs). Fragments are ranked longest-first, then by fewest distinct start
/// nodes (rarer within the query ≈ more selective), then by label sequence;
/// the list is deduplicated by key and capped at `cfg.max_per_query`.
pub fn decompose(g: &LabeledGraph, cfg: &FragmentConfig) -> Option<Vec<Fragment>> {
    let located = match enumerate_paths_located(g, cfg.max_len, cfg.work_cap) {
        LocatedProfile::Overflow => return None,
        LocatedProfile::Counts(map) => map,
    };
    let min_len = cfg.min_len.max(1);
    // (edge_len desc, starts asc, labels lex) is a total order over features,
    // so the ranking is independent of hash-map iteration order.
    let mut ranked: Vec<(Vec<Label>, usize)> = located
        .into_iter()
        .filter(|(feature, _)| {
            let edges = feature.len().saturating_sub(1);
            edges >= min_len && edges <= cfg.max_len
        })
        .map(|(feature, (_, starts))| (feature, starts.len()))
        .collect();
    ranked.sort_unstable_by(|a, b| {
        b.0.len()
            .cmp(&a.0.len())
            .then(a.1.cmp(&b.1))
            .then(a.0.cmp(&b.0))
    });
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for (feature, _) in ranked {
        if out.len() >= cfg.max_per_query {
            break;
        }
        let graph = path_graph(&feature);
        let key = iso_hash(&graph);
        if seen.contains(&key) {
            continue; // a reversed sequence already produced this fragment
        }
        seen.push(key);
        out.push(Fragment { key, graph });
    }
    Some(out)
}

/// A fragment resident in the store, with its exact occurrence set and the
/// per-fragment statistics the eviction policies consume.
#[derive(Debug, Clone)]
pub struct StoredFragment {
    /// Stable serial assigned at insertion (the eviction-policy row id).
    pub id: u64,
    /// Iso-invariant fragment key.
    pub key: u64,
    /// The fragment path graph.
    pub graph: LabeledGraph,
    /// Exact, sorted set of dataset graphs containing the fragment.
    pub occs: Vec<GraphId>,
    /// Number of queries this fragment helped prune.
    pub hits: u64,
    /// Query serial of the most recent hit (insertion serial before any hit).
    pub last_hit: u64,
    /// Total candidates removed by intersections this fragment joined.
    pub r_total: u64,
    /// Total estimated verification cost saved by those removals.
    pub c_total: f64,
}

impl StoredFragment {
    /// Approximate resident bytes: graph + occurrence list + bookkeeping,
    /// accounted through the shared sizing model (`gc_graph::sizing`) so
    /// the fragment store and the cache stores agree on what a byte is.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + gc_graph::sizing::slice_bytes::<GraphId>(self.occs.len())
            + gc_graph::sizing::FRAGMENT_OVERHEAD
    }
}

/// Per-fragment statistics row exported for eviction-policy adaptation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentRow {
    /// Store serial (policy row id).
    pub id: u64,
    /// Hit count.
    pub hits: u64,
    /// Serial of the last hit.
    pub last_hit: u64,
    /// Candidates removed in total.
    pub r_total: u64,
    /// Estimated cost saved in total.
    pub c_total: f64,
    /// Resident bytes of this fragment.
    pub bytes: usize,
}

/// Outcome of probing the store with a query's fragment keys.
#[derive(Debug, Clone, Default)]
pub struct ProbeResult {
    /// Number of keys looked up.
    pub probes: u64,
    /// Store ids of the fragments that were present.
    pub hit_ids: Vec<u64>,
    /// Intersection of the hit fragments' occurrence sets, if any hit.
    pub intersection: Option<Vec<GraphId>>,
}

/// Bounded map from fragment key to exact occurrence set.
///
/// The store itself is policy-agnostic: it tracks bytes and per-fragment
/// stats, exports [`FragmentRow`]s, and evicts whatever ids the caller's
/// eviction policy selects. Budget enforcement lives with the caller so the
/// registry-built policies (`lru`, `slru`, `greedy-dual`, …) apply here
/// exactly as they do to whole cache entries.
#[derive(Debug, Default)]
pub struct FragmentStore {
    map: FxHashMap<u64, StoredFragment>,
    bytes: usize,
    next_id: u64,
}

impl FragmentStore {
    /// An empty store.
    pub fn new() -> Self {
        FragmentStore::default()
    }

    /// Number of resident fragments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate resident bytes across all fragments.
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// Whether a fragment with this key is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Inserts a fragment with its exact occurrence set. Returns the
    /// assigned store id, or `None` (changing nothing) when the key is
    /// already resident — occurrence sets are exact, so re-insertion could
    /// only rebuild the same set.
    pub fn insert(
        &mut self,
        key: u64,
        graph: LabeledGraph,
        occs: Vec<GraphId>,
        now: u64,
    ) -> Option<u64> {
        if self.map.contains_key(&key) {
            return None;
        }
        idset::debug_assert_sorted(&occs);
        let id = self.next_id;
        let frag = StoredFragment {
            id,
            key,
            graph,
            occs,
            hits: 0,
            last_hit: now,
            r_total: 0,
            c_total: 0.0,
        };
        self.next_id += 1;
        self.bytes += frag.memory_bytes();
        self.map.insert(key, frag);
        Some(id)
    }

    /// Restores a fragment with explicit statistics (persistence reload).
    /// Returns the assigned store id, or `None` if the key already exists.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &mut self,
        key: u64,
        graph: LabeledGraph,
        occs: Vec<GraphId>,
        hits: u64,
        last_hit: u64,
        r_total: u64,
        c_total: f64,
    ) -> Option<u64> {
        self.insert(key, graph, occs, last_hit)?;
        let frag = self.map.get_mut(&key).expect("just inserted");
        frag.hits = hits;
        frag.r_total = r_total;
        frag.c_total = c_total;
        Some(frag.id)
    }

    /// Looks up every key and intersects the occurrence sets of the hits.
    /// Read-only: hit accounting happens in [`FragmentStore::credit`], once
    /// the caller knows how much the intersection actually removed.
    pub fn probe(&self, keys: &[u64]) -> ProbeResult {
        let mut result = ProbeResult {
            probes: keys.len() as u64,
            ..ProbeResult::default()
        };
        for key in keys {
            let Some(frag) = self.map.get(key) else {
                continue;
            };
            result.hit_ids.push(frag.id);
            result.intersection = Some(match result.intersection.take() {
                None => frag.occs.clone(),
                Some(acc) => idset::intersect(&acc, &frag.occs),
            });
        }
        result
    }

    /// Credits a pruning outcome to the fragments that participated.
    pub fn credit(&mut self, ids: &[u64], removed: u64, saved: f64, now: u64) {
        for frag in self.map.values_mut() {
            if ids.contains(&frag.id) {
                frag.hits += 1;
                frag.last_hit = now;
                frag.r_total += removed;
                frag.c_total += saved;
            }
        }
    }

    /// Exports per-fragment statistics rows, sorted by id so victim
    /// selection sees a deterministic order.
    pub fn rows(&self) -> Vec<FragmentRow> {
        let mut rows: Vec<FragmentRow> = self
            .map
            .values()
            .map(|f| FragmentRow {
                id: f.id,
                hits: f.hits,
                last_hit: f.last_hit,
                r_total: f.r_total,
                c_total: f.c_total,
                bytes: f.memory_bytes(),
            })
            .collect();
        rows.sort_unstable_by_key(|r| r.id);
        rows
    }

    /// Removes the fragments with the given store ids; returns how many
    /// were actually evicted.
    pub fn evict_ids(&mut self, ids: &[u64]) -> u64 {
        let keys: Vec<u64> = self
            .map
            .values()
            .filter(|f| ids.contains(&f.id))
            .map(|f| f.key)
            .collect();
        let mut evicted = 0;
        for key in keys {
            if let Some(frag) = self.map.remove(&key) {
                self.bytes -= frag.memory_bytes();
                evicted += 1;
            }
        }
        evicted
    }

    /// All resident fragments, sorted by id (persistence snapshot order).
    pub fn iter_sorted(&self) -> Vec<&StoredFragment> {
        let mut frags: Vec<&StoredFragment> = self.map.values().collect();
        frags.sort_unstable_by_key(|f| f.id);
        frags
    }

    /// Drops every fragment.
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<GraphId> {
        v.iter().copied().map(GraphId).collect()
    }

    fn chain(labels: &[Label]) -> LabeledGraph {
        path_graph(labels)
    }

    #[test]
    fn decompose_ranks_longest_first_and_dedupes_reversals() {
        // A 4-node labelled path: fragments of 2 and 3 edges exist; each
        // label sequence and its reverse must collapse to one key.
        let g = chain(&[1, 2, 3, 4]);
        let cfg = FragmentConfig {
            min_len: 2,
            max_len: 3,
            max_per_query: 16,
            ..FragmentConfig::default()
        };
        let frags = decompose(&g, &cfg).expect("no overflow");
        assert!(!frags.is_empty());
        // Longest fragment ([1,2,3,4], 3 edges) ranks first.
        assert_eq!(frags[0].graph.edge_count(), 3);
        // No duplicate keys.
        let mut keys: Vec<u64> = frags.iter().map(|f| f.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), frags.len());
        // Forward and reverse of the full path hash identically.
        assert_eq!(
            iso_hash(&chain(&[1, 2, 3, 4])),
            iso_hash(&chain(&[4, 3, 2, 1]))
        );
    }

    #[test]
    fn decompose_respects_length_bounds_and_cap() {
        let g = chain(&[1, 2, 3, 4, 5]);
        let cfg = FragmentConfig {
            min_len: 2,
            max_len: 2,
            max_per_query: 2,
            ..FragmentConfig::default()
        };
        let frags = decompose(&g, &cfg).expect("no overflow");
        assert_eq!(frags.len(), 2);
        assert!(frags.iter().all(|f| f.graph.edge_count() == 2));
    }

    #[test]
    fn overflow_yields_none() {
        // Work cap of 2 cannot even enumerate the single-node features.
        let g = chain(&[1, 2, 3, 4]);
        let cfg = FragmentConfig {
            work_cap: 2,
            ..FragmentConfig::default()
        };
        assert!(decompose(&g, &cfg).is_none());
    }

    #[test]
    fn store_insert_probe_intersect() {
        let mut store = FragmentStore::new();
        assert!(store
            .insert(10, chain(&[1, 2, 3]), ids(&[0, 2, 4, 6]), 1)
            .is_some());
        assert!(store
            .insert(20, chain(&[2, 3, 4]), ids(&[2, 3, 4]), 2)
            .is_some());
        assert!(
            store.insert(10, chain(&[1, 2, 3]), ids(&[9]), 3).is_none(),
            "dup key"
        );
        assert_eq!(store.len(), 2);

        let r = store.probe(&[10, 20, 99]);
        assert_eq!(r.probes, 3);
        assert_eq!(r.hit_ids.len(), 2);
        assert_eq!(r.intersection, Some(ids(&[2, 4])));

        let miss = store.probe(&[99]);
        assert_eq!(miss.probes, 1);
        assert!(miss.hit_ids.is_empty());
        assert!(miss.intersection.is_none());
    }

    #[test]
    fn credit_updates_stats_rows() {
        let mut store = FragmentStore::new();
        let _ = store.insert(10, chain(&[1, 2, 3]), ids(&[0, 1]), 5);
        let id = store.probe(&[10]).hit_ids[0];
        store.credit(&[id], 7, 3.5, 42);
        let rows = store.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].hits, 1);
        assert_eq!(rows[0].last_hit, 42);
        assert_eq!(rows[0].r_total, 7);
        assert!((rows[0].c_total - 3.5).abs() < 1e-9);
    }

    #[test]
    fn evict_reclaims_bytes() {
        let mut store = FragmentStore::new();
        let _ = store.insert(10, chain(&[1, 2, 3]), ids(&[0, 1, 2]), 1);
        let _ = store.insert(20, chain(&[4, 5, 6]), ids(&[3]), 2);
        let before = store.memory_bytes();
        assert!(before > 0);
        let victim = store.rows()[0].id;
        assert_eq!(store.evict_ids(&[victim]), 1);
        assert_eq!(store.len(), 1);
        assert!(store.memory_bytes() < before);
        store.clear();
        assert_eq!(store.memory_bytes(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn restore_preserves_stats() {
        let mut store = FragmentStore::new();
        let id = store
            .restore(10, chain(&[1, 2]), ids(&[0, 3]), 4, 17, 9, 2.25)
            .expect("fresh key");
        let rows = store.rows();
        assert_eq!(rows[0].id, id);
        assert_eq!(rows[0].hits, 4);
        assert_eq!(rows[0].last_hit, 17);
        assert_eq!(rows[0].r_total, 9);
        assert!((rows[0].c_total - 2.25).abs() < 1e-9);
        assert!(store
            .restore(10, chain(&[1, 2]), ids(&[0]), 0, 0, 0, 0.0)
            .is_none());
    }
}
