//! Concurrency correctness: one shared GraphCache hammered from many
//! threads must return exactly the answers of the uncached Method M —
//! the paper's no-false-positives/negatives invariant, under the service
//! API's `&self` query path (acceptance criterion of the concurrent
//! service redesign).

use graphcache::core::{CostModel, GraphCache, QueryRequest};
use graphcache::prelude::*;
use graphcache::workload::generate_type_a;
use std::sync::atomic::{AtomicUsize, Ordering};

fn dataset() -> GraphDataset {
    datasets::aids_like(0.04, 77) // 40 graphs
}

fn zipf_workload(d: &GraphDataset, count: usize, seed: u64) -> Workload {
    generate_type_a(d, &TypeAConfig::zz(1.4).count(count).seed(seed))
}

/// ≥4 threads borrow one cache instance via `&self` and replay a Zipf
/// workload; every answer must equal the uncached baseline.
#[test]
fn shared_cache_matches_baseline_from_four_threads() {
    const THREADS: usize = 4;
    let d = dataset();
    let workload = zipf_workload(&d, 120, 21);
    let baseline = MethodBuilder::ggsx().build(&d);
    let expected: Vec<Vec<GraphId>> = workload.graphs().map(|q| baseline.run(q).answer).collect();

    let cache = GraphCache::builder()
        .capacity(15)
        .window(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));

    let queries: Vec<&LabeledGraph> = workload.graphs().collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let cache = &cache;
            let queries = &queries;
            let expected = &expected;
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let got = cache.run(queries[i]).answer;
                assert_eq!(got, expected[i], "answer mismatch at query {i}");
            });
        }
    });
    assert!(
        cache.cache_len() <= 15,
        "capacity respected under contention"
    );
}

/// The same invariant through `run_batch`: typed requests fanned over the
/// cache's own thread pool, responses in input order.
#[test]
fn run_batch_matches_baseline_on_zipf_workload() {
    let d = dataset();
    let workload = zipf_workload(&d, 100, 22);
    let baseline = MethodBuilder::ggsx().build(&d);

    let cache = GraphCache::builder()
        .capacity(15)
        .window(4)
        .threads(6)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));

    let responses = cache.run_batch(
        workload
            .graphs()
            .enumerate()
            .map(|(i, q)| QueryRequest::from(q).tag(i as u64)),
    );
    assert_eq!(responses.len(), workload.len());
    for (i, (resp, q)) in responses.iter().zip(workload.graphs()).enumerate() {
        assert_eq!(resp.tag, i as u64, "responses keep input order");
        assert_eq!(
            resp.result.answer,
            baseline.run(q).answer,
            "answer mismatch at query {i}"
        );
    }

    // Serials are unique even when claimed concurrently.
    let mut serials: Vec<u64> = responses.iter().map(|r| r.result.serial).collect();
    serials.sort_unstable();
    serials.dedup();
    assert_eq!(serials.len(), workload.len());
}

/// Cloned handles and background maintenance: clones observe each other's
/// cached queries, and a concurrent background Window Manager still never
/// changes an answer.
#[test]
fn cloned_handles_with_background_maintenance_stay_consistent() {
    const THREADS: usize = 5;
    let d = dataset();
    let workload = zipf_workload(&d, 150, 23);
    let baseline = MethodBuilder::ggsx().build(&d);
    let expected: Vec<Vec<GraphId>> = workload.graphs().map(|q| baseline.run(q).answer).collect();

    let cache = GraphCache::builder()
        .capacity(12)
        .window(5)
        .background(true)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));

    let queries: Vec<&LabeledGraph> = workload.graphs().collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            // Each thread gets its own handle; all share one cache.
            let handle = cache.clone();
            let queries = &queries;
            let expected = &expected;
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let got = handle.run(queries[i]).answer;
                assert_eq!(got, expected[i], "answer mismatch at query {i}");
            });
        }
    });
    cache.flush_pending();
    assert!(cache.cache_len() <= 12);

    // The warmed cache answers exact repeats without verification.
    let repeat = cache.run(queries[0]);
    assert_eq!(repeat.answer, expected[0]);
}

/// Mixed batches: per-request kind overrides and cache bypasses running
/// concurrently against one service instance.
#[test]
fn mixed_requests_run_concurrently() {
    let d = dataset();
    let workload = zipf_workload(&d, 60, 24);
    let sub_baseline = MethodBuilder::ggsx().build(&d);
    let super_baseline = MethodBuilder::ggsx().build(&d);

    let cache = GraphCache::builder()
        .capacity(10)
        .window(3)
        .threads(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));

    let requests: Vec<QueryRequest> = workload
        .graphs()
        .enumerate()
        .map(|(i, q)| {
            let req = QueryRequest::from(q).tag(i as u64);
            match i % 3 {
                0 => req,
                1 => req.kind(QueryKind::Supergraph),
                _ => req.bypass_cache(true),
            }
        })
        .collect();
    let responses = cache.run_batch(requests);
    for (i, (resp, q)) in responses.iter().zip(workload.graphs()).enumerate() {
        let expected = match i % 3 {
            1 => super_baseline.run_directed(q, QueryKind::Supergraph).answer,
            _ => sub_baseline.run(q).answer,
        };
        assert_eq!(resp.result.answer, expected, "request {i}");
        assert_eq!(resp.bypassed_cache, i % 3 == 2);
    }
}
