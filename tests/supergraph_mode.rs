//! Supergraph-query mode: GraphCache's inverse pruning rules (paper §5.1,
//! "Supergraph Query Processing") must preserve answers exactly.

use graphcache::core::{CostModel, GraphCache, QueryKind};
use graphcache::graph::random::bfs_edge_subgraph;
use graphcache::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dataset of small fragments; queries are larger graphs that may contain
/// them.
fn fragments_and_queries() -> (GraphDataset, Vec<LabeledGraph>) {
    let source = datasets::aids_like(0.05, 77); // 50 source graphs
    let mut rng = StdRng::seed_from_u64(9);
    let mut fragments = Vec::new();
    for i in 0..30u32 {
        let g = source.graph(GraphId(i % source.len() as u32));
        if let Some(f) = bfs_edge_subgraph(g, 0, 3 + (i as usize % 3)) {
            fragments.push(f);
        }
    }
    let mut queries = Vec::new();
    for i in 0..40u32 {
        let g = source.graph(GraphId((i * 7) % source.len() as u32));
        let start = rng.gen_range(0..g.node_count()) as u32;
        if let Some(q) = bfs_edge_subgraph(g, start, 10 + (i as usize % 8)) {
            queries.push(q);
        }
    }
    // Repeat some queries to exercise exact hits.
    let repeats: Vec<LabeledGraph> = queries.iter().take(8).cloned().collect();
    queries.extend(repeats);
    (GraphDataset::new(fragments), queries)
}

#[test]
fn supergraph_answers_match_baseline() {
    let (db, queries) = fragments_and_queries();
    let method = MethodBuilder::si_vf2().build(&db);
    let baseline = MethodBuilder::si_vf2().build(&db);
    let cache = GraphCache::builder()
        .capacity(15)
        .window(4)
        .query_kind(QueryKind::Supergraph)
        .cost_model(CostModel::Work)
        .build(method);
    for (i, q) in queries.iter().enumerate() {
        let expected = baseline.run_directed(q, QueryKind::Supergraph).answer;
        let got = cache.run(q).answer;
        assert_eq!(got, expected, "supergraph mismatch at query {i}");
    }
}

#[test]
fn supergraph_exact_hits_fire() {
    let (db, queries) = fragments_and_queries();
    let method = MethodBuilder::si_vf2().build(&db);
    let cache = GraphCache::builder()
        .capacity(30)
        .window(1)
        .query_kind(QueryKind::Supergraph)
        .cost_model(CostModel::Work)
        .build(method);
    let q = &queries[0];
    let first = cache.run(q);
    assert!(!first.record.exact_hit);
    let second = cache.run(q);
    assert!(second.record.exact_hit);
    assert_eq!(second.record.subiso_tests, 0);
    assert_eq!(first.answer, second.answer);
}

#[test]
fn supergraph_expanding_hits_prune() {
    let (db, _) = fragments_and_queries();
    let method = MethodBuilder::si_vf2().build(&db);
    let cache = GraphCache::builder()
        .capacity(30)
        .window(1)
        .query_kind(QueryKind::Supergraph)
        .cost_model(CostModel::Work)
        .build(method);
    // Build a nested pair: small ⊆ big. Cache the small query first; its
    // answers then transfer to the big one (inverse eq. (1)).
    let source = datasets::aids_like(0.05, 77);
    let _rng = StdRng::seed_from_u64(31);
    let big = bfs_edge_subgraph(source.graph(GraphId(0)), 0, 16).unwrap();
    let small = bfs_edge_subgraph(&big, 0, 8).unwrap();
    let small_result = cache.run(&small);
    let big_result = cache.run(&big);
    // The cached small query is a super-direction hit for the big query.
    assert!(
        big_result.record.super_hits > 0,
        "expected the cached narrower query to register"
    );
    // And pruning must have spared some verification whenever the small
    // query had answers.
    if !small_result.answer.is_empty() {
        assert!(big_result.record.cs_gc_size < big_result.record.cs_m_size);
    }
}

#[test]
fn supergraph_empty_shortcut() {
    // If a cached query g' ⊇ g has an empty answer in supergraph mode...
    // inverse rule: shortcut fires when a cached query *containing* g has
    // an empty answer (nothing fits in the bigger one ⇒ nothing fits in g).
    let (db, _) = fragments_and_queries();
    let method = MethodBuilder::si_vf2().build(&db);
    let baseline = MethodBuilder::si_vf2().build(&db);
    let cache = GraphCache::builder()
        .capacity(30)
        .window(1)
        .query_kind(QueryKind::Supergraph)
        .cost_model(CostModel::Work)
        .build(method);
    // A query with labels foreign to the fragment DB has an empty answer.
    let big_foreign = LabeledGraph::from_parts(
        vec![900, 901, 902, 903, 904],
        &[(0, 1), (1, 2), (2, 3), (3, 4)],
    );
    let (small_foreign, _) = big_foreign.edge_subgraph(&[(0, 1), (1, 2)]);
    let r1 = cache.run(&big_foreign);
    assert!(r1.answer.is_empty());
    let r2 = cache.run(&small_foreign);
    assert!(r2.answer.is_empty());
    assert_eq!(
        r2.answer,
        baseline
            .run_directed(&small_foreign, QueryKind::Supergraph)
            .answer
    );
    assert!(
        r2.record.empty_shortcut,
        "inverse empty-answer shortcut must fire"
    );
    assert_eq!(r2.record.subiso_tests, 0);
}
