//! Property-based tests over the whole pipeline: random graphs and
//! workloads, with Ullmann as an algorithmically independent referee.

use graphcache::core::{CostModel, GraphCache};
use graphcache::index::{CtConfig, CtIndex, FilterIndex, GgsxConfig, PathTrie};
use graphcache::methods::MethodBuilder;
use graphcache::prelude::*;
use graphcache::subiso::{GraphQl, Matcher, Ullmann, Vf2, Vf2Plus};
use proptest::prelude::*;

/// Strategy: a small random connected-ish labelled graph.
fn arb_graph(max_nodes: usize, labels: u32) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let label_vec = proptest::collection::vec(0..labels, n);
        let edge_vec = proptest::collection::vec((0..n as u32, 0..n as u32), 1..(2 * n));
        (label_vec, edge_vec).prop_map(|(labels, edges)| LabeledGraph::from_parts(labels, &edges))
    })
}

/// Strategy: a graph plus an edge-subset subgraph of it.
fn arb_graph_with_subgraph() -> impl Strategy<Value = (LabeledGraph, LabeledGraph)> {
    arb_graph(8, 3).prop_flat_map(|g| {
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let n_edges = edges.len();
        proptest::collection::vec(any::<bool>(), n_edges).prop_map(move |mask| {
            let chosen: Vec<(u32, u32)> = edges
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(&e, _)| e)
                .collect();
            let sub = if chosen.is_empty() {
                LabeledGraph::empty()
            } else {
                g.edge_subgraph(&chosen).0
            };
            (g.clone(), sub)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every matcher finds a genuine edge-subgraph.
    #[test]
    fn matchers_accept_true_subgraphs((g, sub) in arb_graph_with_subgraph()) {
        prop_assert!(Vf2::new().contains(&sub, &g));
        prop_assert!(Vf2Plus::new().contains(&sub, &g));
        prop_assert!(GraphQl::new().contains(&sub, &g));
        prop_assert!(Ullmann::new().contains(&sub, &g));
    }

    /// All four matchers agree on arbitrary pairs (Ullmann as referee).
    #[test]
    fn matchers_agree(p in arb_graph(6, 3), t in arb_graph(8, 3)) {
        let expected = Ullmann::new().contains(&p, &t);
        prop_assert_eq!(Vf2::new().contains(&p, &t), expected, "VF2 disagrees");
        prop_assert_eq!(Vf2Plus::new().contains(&p, &t), expected, "VF2+ disagrees");
        prop_assert_eq!(GraphQl::new().contains(&p, &t), expected, "GQL disagrees");
    }

    /// Embedding counts agree across matchers.
    #[test]
    fn embedding_counts_agree(p in arb_graph(5, 2), t in arb_graph(6, 2)) {
        let reference = Vf2::new().count_embeddings(&p, &t, u64::MAX);
        prop_assert_eq!(Vf2Plus::new().count_embeddings(&p, &t, u64::MAX), reference);
        prop_assert_eq!(GraphQl::new().count_embeddings(&p, &t, u64::MAX), reference);
        prop_assert_eq!(Ullmann::new().count_embeddings(&p, &t, u64::MAX), reference);
    }

    /// FTV filters never drop a true answer (soundness).
    #[test]
    fn filters_have_no_false_negatives(
        graphs in proptest::collection::vec(arb_graph(8, 3), 3..8),
        query in arb_graph(5, 3),
    ) {
        let d = GraphDataset::new(graphs);
        let ggsx = PathTrie::build(&d, GgsxConfig::default());
        let ct = CtIndex::build(&d, CtConfig::default());
        let vf2 = Vf2::new();
        let cs_ggsx = ggsx.filter(&query);
        let cs_ct = ct.filter(&query);
        for id in d.ids() {
            if vf2.contains(&query, d.graph(id)) {
                prop_assert!(cs_ggsx.binary_search(&id).is_ok(), "GGSX dropped {id}");
                prop_assert!(cs_ct.binary_search(&id).is_ok(), "CT-Index dropped {id}");
            }
        }
    }

    /// GraphCache answers equal baseline answers on random workloads.
    #[test]
    fn gc_equals_baseline(
        graphs in proptest::collection::vec(arb_graph(8, 3), 4..8),
        queries in proptest::collection::vec(arb_graph(5, 3), 5..12),
    ) {
        let d = GraphDataset::new(graphs);
        let method = MethodBuilder::ggsx().build(&d);
        let baseline = MethodBuilder::ggsx().build(&d);
        let cache = GraphCache::builder()
            .capacity(4)
            .window(2)
            .cost_model(CostModel::Work)
            .build(method);
        for q in &queries {
            let expected = baseline.run(q).answer;
            prop_assert_eq!(cache.run(q).answer, expected);
        }
    }
}
