//! Deterministic fault-injection sweep over the crash-safe snapshot
//! path: every filesystem operation of a staged save is crashed in turn
//! (hard failure, torn write, ENOSPC), for both persist formats, and
//! recovery must always yield a valid generation — either the previous
//! good snapshot (fault before the `MANIFEST` commit point) or the new
//! one (fault after) — and must never panic. This is the executable form
//! of the durability contract in `crates/gc-core/src/staged.rs`.

use graphcache::core::{
    FaultIo, FaultMode, Manifest, PersistFormat, PersistedCache, QueryKind, RealIo,
};
use graphcache::graph::{GraphId, LabeledGraph};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Per-test scratch directory (tests run in parallel in one process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc-fault-inj-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Recursive copy — each crash point gets its own pristine replica of the
/// two-generation baseline directory.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy target");
    for entry in std::fs::read_dir(src).expect("read src") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}

/// A small distinguishable cache state: `tag` shows up in `next_serial`
/// and in every entry serial, so recovery asserts can tell exactly which
/// snapshot survived.
fn state(tag: u64) -> PersistedCache {
    let entries = (0..3u64)
        .map(|i| {
            let graph =
                LabeledGraph::from_parts(vec![0, 1, ((tag + i) % 3) as u32], &[(0, 1), (1, 2)]);
            let fingerprint = graphcache::index::fingerprint::iso_hash(&graph);
            (
                tag + i,
                graph,
                vec![GraphId(i as u32), GraphId(i as u32 + 7)],
                QueryKind::Subgraph,
                fingerprint,
            )
        })
        .collect();
    PersistedCache {
        entries,
        next_serial: tag + 10,
        policy: Some("hd".to_string()),
        ..PersistedCache::default()
    }
}

/// The serials that identify a recovered state.
fn serials(s: &PersistedCache) -> (u64, Vec<u64>) {
    (
        s.next_serial,
        s.entries.iter().map(|e| e.0).collect::<Vec<_>>(),
    )
}

/// Builds the baseline: generation 1 holds `state(100)`, generation 2
/// holds `state(200)` — both committed through the real staged writer.
fn baseline(tag: &str, format: PersistFormat) -> PathBuf {
    let dir = scratch(tag);
    state(100)
        .save_staged(&dir, format, &RealIo)
        .expect("gen 1");
    state(200)
        .save_staged(&dir, format, &RealIo)
        .expect("gen 2");
    dir
}

/// Crashes op number `fail_at` of a gen-3 save with `mode`, then asserts
/// the recovery invariant: `load_resilient` yields either the surviving
/// generation-2 state or the fully committed generation-3 state — never
/// an error, never a panic, never a hybrid.
fn crash_point_recovers(base: &Path, format: PersistFormat, fail_at: usize, mode: FaultMode) {
    let dir = base.with_file_name(format!(
        "{}-p{fail_at}",
        base.file_name().unwrap().to_string_lossy()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    copy_dir(base, &dir);

    let io = FaultIo::new(fail_at, mode);
    let result = state(300).save_staged(&dir, format, &io);
    assert!(io.fired(), "fault at op {fail_at} never fired");
    assert!(result.is_err(), "a save whose IO failed must report it");
    if matches!(mode, FaultMode::NoSpace) {
        if let Err(e) = &result {
            // The injected error must keep its typed kind so callers can
            // distinguish disk-full from other failures.
            assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::StorageFull | std::io::ErrorKind::Other
                ) || e.to_string().contains("no space"),
                "ENOSPC fault lost its identity: {e}"
            );
        }
    }

    let recovered = PersistedCache::load_resilient(&dir, QueryKind::Subgraph)
        .unwrap_or_else(|e| panic!("crash at op {fail_at} ({mode:?}) lost the cache: {e}"));
    let generation = recovered
        .generation
        .expect("baseline has a manifest; recovery must use it");
    let got = serials(&recovered.state);
    match generation {
        2 => assert_eq!(
            got,
            serials(&state(200)),
            "crash at op {fail_at} ({mode:?}): generation 2 content diverged"
        ),
        3 => assert_eq!(
            got,
            serials(&state(300)),
            "crash at op {fail_at} ({mode:?}): generation 3 content diverged"
        ),
        other => panic!("crash at op {fail_at} ({mode:?}) recovered unexpected generation {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Counts the filesystem ops of one staged save on a replica, so the
/// exhaustive sweep knows every crash point.
fn count_ops(base: &Path, format: PersistFormat) -> usize {
    let probe = base.with_file_name(format!(
        "{}-probe",
        base.file_name().unwrap().to_string_lossy()
    ));
    let _ = std::fs::remove_dir_all(&probe);
    copy_dir(base, &probe);
    let counter = FaultIo::counting();
    state(300)
        .save_staged(&probe, format, &counter)
        .expect("counting save succeeds");
    let ops = counter.ops();
    let _ = std::fs::remove_dir_all(&probe);
    assert!(
        ops >= 4,
        "a staged save is at least stage+rename+manifest+commit"
    );
    ops
}

fn sweep(tag: &str, format: PersistFormat, mode: FaultMode) {
    let base = baseline(tag, format);
    let ops = count_ops(&base, format);
    for fail_at in 0..ops {
        crash_point_recovers(&base, format, fail_at, mode);
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn every_crash_point_recovers_text_fail() {
    sweep("text-fail", PersistFormat::Text, FaultMode::Fail);
}

#[test]
fn every_crash_point_recovers_text_tear() {
    sweep("text-tear", PersistFormat::Text, FaultMode::Tear(9));
}

#[test]
fn every_crash_point_recovers_text_enospc() {
    sweep("text-enospc", PersistFormat::Text, FaultMode::NoSpace);
}

#[test]
fn every_crash_point_recovers_binary_fail() {
    sweep("binary-fail", PersistFormat::Binary, FaultMode::Fail);
}

#[test]
fn every_crash_point_recovers_binary_tear() {
    sweep("binary-tear", PersistFormat::Binary, FaultMode::Tear(3));
}

#[test]
fn every_crash_point_recovers_binary_enospc() {
    sweep("binary-enospc", PersistFormat::Binary, FaultMode::NoSpace);
}

/// A directory whose `MANIFEST` is corrupted (bit flip) must not brick
/// recovery: the manifest is rejected by its checksum and the flat
/// current-view files — refreshed at every commit — still load.
#[test]
fn corrupt_manifest_falls_back_to_flat_view() {
    let dir = baseline("corrupt-manifest", PersistFormat::Text);
    let manifest = dir.join("MANIFEST");
    let mut bytes = std::fs::read(&manifest).expect("read manifest");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&manifest, &bytes).expect("corrupt manifest");
    assert!(
        Manifest::read(&dir).is_none(),
        "a bit-flipped manifest must fail checksum validation"
    );

    let recovered =
        PersistedCache::load_resilient(&dir, QueryKind::Subgraph).expect("flat-view fallback");
    assert_eq!(recovered.generation, None, "fallback is the legacy path");
    assert_eq!(serials(&recovered.state), serials(&state(200)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crashed save leaves recovery intact *and* the next real save heals
/// the directory: it commits a fresh generation on top of whatever the
/// crash left behind, and subsequent recovery returns the new state.
#[test]
fn next_save_after_crash_heals_the_directory() {
    let format = PersistFormat::Binary;
    let base = baseline("heal", format);
    let ops = count_ops(&base, format);
    for fail_at in [0, ops / 2, ops - 1] {
        let dir = base.with_file_name(format!("gc-fault-inj-heal-h{fail_at}"));
        let _ = std::fs::remove_dir_all(&dir);
        copy_dir(&base, &dir);
        let io = FaultIo::new(fail_at, FaultMode::Fail);
        let _ = state(300).save_staged(&dir, format, &io);
        // The healing save must succeed and win recovery outright.
        state(400)
            .save_staged(&dir, format, &RealIo)
            .expect("healing save");
        let recovered =
            PersistedCache::load_resilient(&dir, QueryKind::Subgraph).expect("recover after heal");
        assert_eq!(serials(&recovered.state), serials(&state(400)));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomised cross-product on top of the exhaustive sweeps: any
    /// (crash point, fault mode, tear offset, format) combination must
    /// recover a valid generation. The exhaustive tests pin every op
    /// index for fixed modes; this covers the tear-offset dimension the
    /// sweep holds constant.
    #[test]
    fn random_crash_points_recover(
        fail_at in 0usize..32,
        tear in 0usize..64,
        mode_sel in 0u8..3,
        format_sel in 0u8..2,
    ) {
        let binary = format_sel == 1;
        let format = if binary { PersistFormat::Binary } else { PersistFormat::Text };
        let mode = match mode_sel {
            0 => FaultMode::Fail,
            1 => FaultMode::Tear(tear),
            _ => FaultMode::NoSpace,
        };
        let base = baseline(
            &format!("prop-{fail_at}-{tear}-{mode_sel}-{binary}"),
            format,
        );
        let ops = count_ops(&base, format);
        crash_point_recovers(&base, format, fail_at % ops, mode);
        let _ = std::fs::remove_dir_all(&base);
    }
}
