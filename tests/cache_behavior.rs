//! End-to-end behaviour of the cache machinery: capacity, windowing,
//! statistics, admission control and maintenance accounting.

use graphcache::core::stats::columns;
use graphcache::core::{AdmissionConfig, CostModel, GraphCache, PolicyKind};
use graphcache::prelude::*;
use graphcache::workload::generate_type_a;

fn dataset() -> GraphDataset {
    datasets::aids_like(0.05, 500)
}

fn build_cache(d: &GraphDataset, capacity: usize, window: usize) -> GraphCache {
    GraphCache::builder()
        .capacity(capacity)
        .window(window)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(d))
}

#[test]
fn window_batches_admissions() {
    let d = dataset();
    let gc = build_cache(&d, 50, 5);
    let w = generate_type_a(&d, &TypeAConfig::uu().count(14).seed(1));
    for (i, q) in w.graphs().enumerate() {
        gc.run(q);
        // Cache only changes at window boundaries.
        let expected = ((i + 1) / 5) * 5;
        assert_eq!(gc.cache_len(), expected.min(50), "after query {i}");
        assert_eq!(gc.window_len(), (i + 1) % 5);
    }
}

#[test]
fn capacity_is_hard_bound_under_all_policies() {
    let d = dataset();
    let w = generate_type_a(&d, &TypeAConfig::uu().count(60).seed(2));
    for policy in PolicyKind::ALL {
        let gc = GraphCache::builder()
            .capacity(7)
            .window(3)
            .policy(policy)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::ggsx().build(&d));
        for q in w.graphs() {
            gc.run(q);
            assert!(gc.cache_len() <= 7, "policy {policy:?} overflowed");
        }
    }
}

#[test]
fn evicted_entries_lose_their_stats_rows() {
    let d = dataset();
    let gc = build_cache(&d, 4, 2);
    let w = generate_type_a(&d, &TypeAConfig::uu().count(20).seed(3));
    for q in w.graphs() {
        gc.run(q);
    }
    // Stats rows exist only for currently cached entries.
    let cached = gc.cache_len();
    gc.with_stats(|s| {
        assert_eq!(s.len(), cached, "stats rows must track cache contents");
    });
}

#[test]
fn admission_control_blocks_cheap_queries() {
    let d = dataset();
    // Work-based cost model: expensiveness = verification work. With an
    // aggressive target fraction, only the heaviest queries enter.
    let gc = GraphCache::builder()
        .capacity(50)
        .window(5)
        .admission(AdmissionConfig {
            enabled: true,
            calibration_windows: 1,
            target_expensive_fraction: 0.2,
        })
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    let w = generate_type_a(&d, &TypeAConfig::uu().count(40).seed(4));
    for q in w.graphs() {
        gc.run(q);
    }
    // Window 1 (5 queries) admits everything (calibration); afterwards only
    // ~20% pass. 5 + ~7 of the remaining 35 → strictly fewer than the
    // no-AC case, which would cache min(40, 50) = 40.
    assert!(
        gc.cache_len() < 20,
        "admission control failed to gate: {} cached",
        gc.cache_len()
    );
}

#[test]
fn maintenance_time_is_recorded() {
    let d = dataset();
    let gc = build_cache(&d, 20, 5);
    let w = generate_type_a(&d, &TypeAConfig::uu().count(25).seed(5));
    let mut inline_maintenance = std::time::Duration::ZERO;
    for q in w.graphs() {
        inline_maintenance += gc.run(q).record.maintenance;
    }
    assert!(gc.maintenance_total() > std::time::Duration::ZERO);
    // Inline mode charges maintenance to the boundary queries.
    assert!(gc.maintenance_total().as_micros() > 0);
    assert!(inline_maintenance >= std::time::Duration::from_micros(1));
}

#[test]
fn hit_statistics_accumulate_on_cached_entries() {
    let d = dataset();
    let gc = build_cache(&d, 30, 1);
    let w = generate_type_a(&d, &TypeAConfig::zz(1.7).count(30).seed(6));
    let mut serials = Vec::new();
    for q in w.graphs() {
        serials.push(gc.run(q).serial);
    }
    // Zipf-1.7 workloads repeat queries; some cached entry must have been
    // credited with hits and R contributions.
    let total_hits: f64 = gc.with_stats(|s| {
        s.column(columns::HITS)
            .iter()
            .map(|(_, v)| v.as_f64())
            .sum()
    });
    assert!(total_hits > 0.0, "no hits credited on a skewed workload");
}

#[test]
fn larger_cache_never_hurts_hit_rate() {
    let d = dataset();
    let w = generate_type_a(&d, &TypeAConfig::zz(1.4).count(120).seed(7));
    let hit_count = |capacity: usize| {
        let gc = build_cache(&d, capacity, 5);
        let mut hits = 0usize;
        for q in w.graphs() {
            hits += gc.run(q).record.any_hit() as usize;
        }
        hits
    };
    let small = hit_count(5);
    let large = hit_count(60);
    assert!(large >= small, "bigger cache lost hits: {large} < {small}");
}

#[test]
fn gc_memory_stays_modest_relative_to_ftv_index() {
    // The §7.3 space claim at miniature scale: GC's stores are a fraction
    // of a serious FTV index.
    let d = datasets::aids_like(0.2, 901);
    let gc = GraphCache::builder()
        .capacity(100)
        .window(10)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::grapes(1).build(&d));
    let w = generate_type_a(&d, &TypeAConfig::zz(1.4).count(150).seed(8));
    for q in w.graphs() {
        gc.run(q);
    }
    let gc_bytes = gc.memory_bytes() as f64;
    let index_bytes = gc.method().index_memory_bytes().unwrap() as f64;
    assert!(
        gc_bytes < 0.5 * index_bytes,
        "GC stores ({gc_bytes} B) not small vs index ({index_bytes} B)"
    );
}
