//! Routed-fleet smoke tests: in-process `gc serve` peers behind an
//! in-process `gc route` [`Router`], all over per-test unix sockets.
//! Covers the PR's failure-mode bar — a dead peer degrades its ring
//! slice to miss-only instead of taking the fleet down, `BUSY` peers are
//! retried with seeded backoff, and a proto-3 session that never
//! announced `VERSION proto=4` gets a typed version error from a routed
//! peer — plus the exact-repeat fast path and fleet `STATS`.

use graphcache::core::{CostModel, GraphCache};
use graphcache::graph::GraphDataset;
use graphcache::index::fingerprint::iso_hash;
use graphcache::methods::MethodBuilder;
use graphcache::server::{
    Client, ClientError, HoldOutcome, PeerIdentity, QueryFrame, QueryOutcome, RetryPolicy, Ring,
    Router, RouterConfig, RouterShutdownHandle, ServeConfig, Server, StatsScope,
};
use graphcache::workload::{generate_type_a, DatasetProfile, TypeAConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A per-test unix-socket path (tests run in parallel in one process).
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gc-route-smoke-{}-{tag}.sock", std::process::id()))
}

fn dataset() -> GraphDataset {
    DatasetProfile::aids().scaled(0.05).generate(11)
}

fn queries(dataset: &GraphDataset, count: usize) -> Vec<graphcache::graph::LabeledGraph> {
    generate_type_a(dataset, &TypeAConfig::zz(1.4).count(count).seed(13))
        .graphs()
        .cloned()
        .collect()
}

/// The same cache configuration on every peer: replicas advance in
/// lockstep only because they are identically configured and replay the
/// identical (router-sequenced) frame stream.
fn make_cache(dataset: &GraphDataset) -> GraphCache {
    let method = MethodBuilder::ggsx().build(dataset);
    GraphCache::builder()
        .capacity(25)
        .window(8)
        .eviction("hd")
        .cost_model(CostModel::Work)
        .try_build(method)
        .expect("cache builds")
}

type DaemonHandle = std::thread::JoinHandle<Result<(), graphcache::server::ServeError>>;

/// Spawns one routed peer (`--peer-id index/total`) on its own socket.
fn spawn_peer(
    cache: GraphCache,
    socket: &Path,
    index: u64,
    total: u64,
    tweak: impl FnOnce(&mut ServeConfig),
) -> DaemonHandle {
    let mut cfg = ServeConfig {
        unix: Some(socket.to_path_buf()),
        peer: PeerIdentity::new(index, total),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(cache, cfg).expect("bind peer socket");
    std::thread::spawn(move || server.run())
}

/// Boots `total` identically configured peers plus a router in front of
/// them. Returns everything a test needs to drive and then unwind the
/// fleet.
struct Fleet {
    router_socket: PathBuf,
    peer_sockets: Vec<PathBuf>,
    peers: Vec<Option<DaemonHandle>>,
    router: std::thread::JoinHandle<Result<(), graphcache::server::ServeError>>,
    router_handle: RouterShutdownHandle,
}

fn boot_fleet(tag: &str, total: u64, data: &GraphDataset) -> Fleet {
    boot_fleet_with(tag, total, data, |_| {})
}

fn boot_fleet_with(
    tag: &str,
    total: u64,
    data: &GraphDataset,
    tweak: impl Fn(&mut ServeConfig),
) -> Fleet {
    let peer_sockets: Vec<PathBuf> = (0..total)
        .map(|i| socket_path(&format!("{tag}-peer{i}")))
        .collect();
    let peers: Vec<Option<DaemonHandle>> = peer_sockets
        .iter()
        .enumerate()
        .map(|(i, sock)| Some(spawn_peer(make_cache(data), sock, i as u64, total, &tweak)))
        .collect();
    let router_socket = socket_path(&format!("{tag}-router"));
    let router = Router::bind(RouterConfig {
        unix: router_socket.clone(),
        peers: peer_sockets.clone(),
        retry: RetryPolicy::seeded(10, 0xf1ee7),
        handle_signals: false,
    })
    .expect("router binds once every peer greets");
    let router_handle = router.shutdown_handle();
    let router = std::thread::spawn(move || router.run());
    Fleet {
        router_socket,
        peer_sockets,
        peers,
        router,
        router_handle,
    }
}

impl Fleet {
    /// Connects to the router, tolerating the bind/accept gap.
    fn connect(&self) -> Client {
        connect(&self.router_socket)
    }

    /// Drains one peer and waits for it to be fully gone, so the next
    /// routed interaction deterministically observes the death instead of
    /// racing the peer's drain grace window.
    fn kill_peer(&mut self, idx: usize) {
        connect(&self.peer_sockets[idx])
            .shutdown()
            .expect("shutdown peer");
        self.peers[idx]
            .take()
            .expect("peer killed twice")
            .join()
            .expect("join peer")
            .expect("clean exit");
    }

    /// Stops the router, then drains every still-live peer directly.
    fn unwind(self) {
        self.router_handle.shutdown();
        self.router
            .join()
            .expect("join router")
            .expect("clean exit");
        for (sock, daemon) in self.peer_sockets.iter().zip(self.peers) {
            let Some(daemon) = daemon else { continue };
            if let Ok(mut client) = Client::connect_unix(sock) {
                let _ = client.shutdown();
            }
            daemon.join().expect("join peer").expect("clean exit");
            let _ = std::fs::remove_file(sock);
        }
        let _ = std::fs::remove_file(&self.router_socket);
    }
}

fn connect(socket: &Path) -> Client {
    for _ in 0..200 {
        match Client::connect_unix(socket) {
            Ok(client) => return client,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("daemon at {socket:?} never accepted");
}

fn frame(id: u64, graph: &graphcache::graph::LabeledGraph) -> QueryFrame {
    QueryFrame {
        id,
        graph: graph.clone(),
        kind: None,
        verify_budget: None,
        max_hits: None,
        bypass: false,
        timeout_ms: None,
        allow: None,
    }
}

fn stat(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("STATS missing {key}"))
}

/// Replaying a workload twice through the router: the second pass is all
/// exact repeats, so every query takes the O(1) fast path (no probe
/// fanout), and the fleet-health gauges report every peer live.
#[test]
fn exact_repeats_take_the_fast_path() {
    let data = dataset();
    let workload = queries(&data, 8);
    let fleet = boot_fleet("fastpath", 3, &data);
    let mut client = fleet.connect();

    let mut first_pass = Vec::new();
    for (i, graph) in workload.iter().enumerate() {
        match client.query(frame(i as u64, graph)).expect("query") {
            QueryOutcome::Result(r) => first_pass.push(r.answer),
            QueryOutcome::Busy { .. } => panic!("sequenced replay must never see BUSY"),
        }
    }
    let warm_stats = client.stats(StatsScope::Global).expect("stats");
    for (i, graph) in workload.iter().enumerate() {
        match client.query(frame(100 + i as u64, graph)).expect("query") {
            QueryOutcome::Result(r) => {
                assert_eq!(r.answer, first_pass[i], "repeat {i} changed its answer");
            }
            QueryOutcome::Busy { .. } => panic!("sequenced replay must never see BUSY"),
        }
    }

    let stats = client.stats(StatsScope::Global).expect("stats");
    // Every second-pass query was a known fingerprint with a live owner.
    let uniques = {
        let mut fps: Vec<u64> = workload.iter().map(iso_hash).collect();
        fps.sort_unstable();
        fps.dedup();
        fps.len() as u64
    };
    assert_eq!(
        stat(&stats, "routed_exact") - stat(&warm_stats, "routed_exact"),
        workload.len() as u64
    );
    // Each first-sight query fanned its probe to all three live peers.
    assert_eq!(stat(&stats, "fanout_probes"), uniques * 3);
    assert_eq!(stat(&stats, "peer_misses"), 0);
    assert_eq!(stat(&stats, "peers_live"), 3);
    assert_eq!(stat(&stats, "peers_total"), 3);
    drop(client);
    fleet.unwind();
}

/// Killing a peer mid-fleet degrades its ring slice to miss-only: fresh
/// queries — including ones the dead peer *owned* — still succeed, the
/// router counts the degradation in `peer_misses`, and nothing panics.
#[test]
fn dead_peer_degrades_to_miss_only() {
    let data = dataset();
    let workload = queries(&data, 24);
    let mut fleet = boot_fleet("degrade", 3, &data);
    let mut client = fleet.connect();

    // Warm with a prefix, then kill peer 1 out from under the router.
    for (i, graph) in workload[..6].iter().enumerate() {
        match client.query(frame(i as u64, graph)).expect("query") {
            QueryOutcome::Result(_) => {}
            QueryOutcome::Busy { .. } => panic!("unexpected BUSY"),
        }
    }
    fleet.kill_peer(1);

    // The ring is deterministic, so pick a fresh query the dead peer
    // owns: it must take the degraded (dead-owner) path and still answer.
    let ring = Ring::new(3);
    let orphan = workload[6..]
        .iter()
        .find(|g| ring.owner(iso_hash(g)) == 1)
        .expect("24 zipf queries cover all three slices");
    match client.query(frame(1000, orphan)).expect("query") {
        QueryOutcome::Result(r) => assert_eq!(r.id, 1000),
        QueryOutcome::Busy { .. } => panic!("unexpected BUSY"),
    }
    // And queries owned by surviving peers keep working too.
    let kept = workload[6..]
        .iter()
        .find(|g| ring.owner(iso_hash(g)) != 1)
        .expect("24 zipf queries cover all three slices");
    match client.query(frame(1001, kept)).expect("query") {
        QueryOutcome::Result(r) => assert_eq!(r.id, 1001),
        QueryOutcome::Busy { .. } => panic!("unexpected BUSY"),
    }

    let stats = client.stats(StatsScope::Global).expect("stats");
    assert!(
        stat(&stats, "peer_misses") > 0,
        "degradation went uncounted"
    );
    assert_eq!(stat(&stats, "peers_live"), 2);
    assert_eq!(stat(&stats, "peers_total"), 3);
    drop(client);
    fleet.unwind();
}

/// A saturated peer is retried with the router's seeded backoff: `HOLD`
/// takes the single permit on the only peer, a background release after
/// ~150ms lands inside the retry schedule, and the routed query succeeds
/// without ever surfacing `BUSY` to the client or degrading the peer.
#[test]
fn busy_peer_is_retried_with_backoff() {
    let data = dataset();
    let workload = queries(&data, 1);
    let fleet = boot_fleet_with("busy", 1, &data, |cfg| cfg.max_inflight = 1);

    let mut holder = connect(&fleet.peer_sockets[0]);
    assert_eq!(holder.hold().expect("hold"), HoldOutcome::Held);
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        holder.release().expect("release");
        holder.quit().expect("quit");
    });

    let mut client = fleet.connect();
    match client.query(frame(1, &workload[0])).expect("query") {
        QueryOutcome::Result(r) => assert_eq!(r.id, 1),
        QueryOutcome::Busy { .. } => panic!("router must retry BUSY, not forward it"),
    }
    releaser.join().expect("join releaser");

    let stats = client.stats(StatsScope::Global).expect("stats");
    assert_eq!(stat(&stats, "peer_misses"), 0, "BUSY is not a degradation");
    assert_eq!(stat(&stats, "peers_live"), 1);
    drop(client);
    fleet.unwind();
}

/// Version gating on routed peers: a session that never announced
/// `VERSION proto=4` (a proto-3 client) gets a typed `ERR code=version`
/// for query traffic, while control frames (`PING`, `STATS`) stay open;
/// after announcing, the same session queries normally.
#[test]
fn unannounced_sessions_cannot_query_a_routed_peer() {
    let data = dataset();
    let workload = queries(&data, 1);
    let socket = socket_path("vgate");
    let daemon = spawn_peer(make_cache(&data), &socket, 0, 1, |_| {});

    let mut client = connect(&socket);
    client.ping(Some("ungated")).expect("ping is version-free");
    client
        .stats(StatsScope::Global)
        .expect("stats is version-free");
    match client.query(frame(1, &workload[0])) {
        Err(ClientError::Server { code, msg }) => {
            assert_eq!(code, "version");
            assert!(msg.contains("proto"), "error names the protocol: {msg}");
        }
        other => panic!("unannounced query must be refused, got {other:?}"),
    }

    assert_eq!(client.announce().expect("announce"), 4);
    match client.query(frame(2, &workload[0])).expect("query") {
        QueryOutcome::Result(r) => assert_eq!(r.id, 2),
        QueryOutcome::Busy { .. } => panic!("unexpected BUSY"),
    }
    client.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}

/// A plain (non-routed) daemon never version-gates: proto-3 clients keep
/// working against it exactly as before.
#[test]
fn unrouted_daemons_accept_unannounced_queries() {
    let data = dataset();
    let workload = queries(&data, 1);
    let socket = socket_path("ungated");
    let cfg = ServeConfig {
        unix: Some(socket.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind(make_cache(&data), cfg).expect("bind");
    let daemon = std::thread::spawn(move || server.run());

    let mut client = connect(&socket);
    match client.query(frame(1, &workload[0])).expect("query") {
        QueryOutcome::Result(r) => assert_eq!(r.id, 1),
        QueryOutcome::Busy { .. } => panic!("unexpected BUSY"),
    }
    client.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}
