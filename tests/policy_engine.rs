//! Pluggable policy engine acceptance tests.
//!
//! * **Parity** — every trait-based built-in must select exactly the
//!   victims the pre-refactor `PolicyKind` enum dispatch selects, both on
//!   a recorded Zipf statistics trace and through a full cache replay.
//! * **Registry** — names round-trip (`name → build → name()`), unknown
//!   names fail with the available-policy listing, and the two post-paper
//!   policies are selectable end-to-end.
//! * **Persistence** — snapshots record the eviction policy; restoring
//!   under a different policy (or from a legacy save) still loads.

use graphcache::core::registry;
use graphcache::core::{
    CostModel, EvictionPolicy, GraphCache, PolicyKind, PolicyRow, PolicyView, QuerySerial,
};
use graphcache::graph::zipf::ZipfSampler;
use graphcache::prelude::*;
use graphcache::workload::generate_type_a;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn dataset() -> GraphDataset {
    datasets::aids_like(0.04, 77) // 40 graphs
}

fn zipf_workload(d: &GraphDataset, count: usize, seed: u64) -> Workload {
    generate_type_a(d, &TypeAConfig::zz(1.4).count(count).seed(seed))
}

/// Replays a synthetic Zipf hit trace over a fixed set of cached entries,
/// yielding the statistics table after every "window" of events — the same
/// `PolicyRow` views a maintenance round would assemble.
fn zipf_row_trace(entries: usize, events: usize, window: usize, seed: u64) -> Vec<Vec<PolicyRow>> {
    let mut rows: Vec<PolicyRow> = (1..=entries as u64)
        .map(|serial| PolicyRow {
            serial,
            last_hit: serial,
            hits: 0,
            r_total: 0,
            c_total: 0.0,
        })
        .collect();
    let sampler = ZipfSampler::new(entries, 1.2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut snapshots = Vec::new();
    for event in 0..events {
        let idx = sampler.sample(&mut rng);
        let now = entries as u64 + event as u64 + 1;
        let row = &mut rows[idx];
        row.last_hit = now;
        row.hits += 1;
        let r: u64 = rng.gen_range(1..200);
        row.r_total += r;
        row.c_total += r as f64 * rng.gen_range(0.5..20.0);
        if (event + 1) % window == 0 {
            snapshots.push(rows.clone());
        }
    }
    snapshots
}

/// Each trait-based built-in must pick exactly the victims the enum
/// dispatch picks, at every point of the recorded trace and for several
/// eviction batch sizes.
#[test]
fn trace_replay_parity_with_enum_dispatch() {
    let trace = zipf_row_trace(40, 400, 50, 9);
    assert_eq!(trace.len(), 8, "recorded trace has 8 windows");
    for kind in PolicyKind::ALL {
        let mut policy = registry::build_eviction(kind.registry_name()).unwrap();
        for (w, rows) in trace.iter().enumerate() {
            let now = 40 + (w as u64 + 1) * 50;
            for evict in [1usize, 5, 17] {
                let expected = kind.select_victims(rows, evict, now);
                let got = policy.select_victims(&PolicyView::new(rows, now), evict);
                assert_eq!(
                    got,
                    expected,
                    "policy {} diverged at window {w}, evict {evict}",
                    kind.name()
                );
            }
        }
    }
}

/// Full-cache parity: a cache built by registry name caches exactly the
/// same queries as one built with the pre-refactor enum setter.
#[test]
fn cache_replay_parity_enum_vs_registry() {
    let d = dataset();
    let workload = zipf_workload(&d, 150, 33);
    for kind in PolicyKind::ALL {
        let by_enum = GraphCache::builder()
            .capacity(8)
            .window(5)
            .cost_model(CostModel::Work)
            .policy(kind)
            .build(MethodBuilder::ggsx().build(&d));
        let by_name = GraphCache::builder()
            .capacity(8)
            .window(5)
            .cost_model(CostModel::Work)
            .eviction(kind.registry_name())
            .build(MethodBuilder::ggsx().build(&d));
        for q in workload.graphs() {
            assert_eq!(by_enum.run(q).answer, by_name.run(q).answer);
        }
        let cached = |c: &GraphCache| {
            c.with_stats(|s| {
                let mut keys: Vec<QuerySerial> = s.keys().collect();
                keys.sort_unstable();
                keys
            })
        };
        assert_eq!(
            cached(&by_enum),
            cached(&by_name),
            "cached sets diverged under {}",
            kind.name()
        );
    }
}

/// `name → build → name()` for every canonical registry entry, plus alias
/// and error behaviour.
#[test]
fn registry_round_trips_names() {
    for name in registry::eviction_names() {
        let p = registry::build_eviction(&name).unwrap();
        assert_eq!(p.name(), name);
    }
    for name in registry::admission_names() {
        let p = registry::build_admission(&name).unwrap();
        assert_eq!(p.name(), name);
    }
    // The paper's recommended policy under its related-work name.
    assert_eq!(registry::build_eviction("gcr").unwrap().name(), "hd");

    let err = registry::build_eviction("not-a-policy").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("not-a-policy"));
    for name in registry::eviction_names() {
        assert!(msg.contains(&name), "error must list {name}: {msg}");
    }
}

/// The builder surfaces unknown specs as typed errors via `try_build`.
#[test]
fn builder_rejects_unknown_specs() {
    let d = dataset();
    let err = GraphCache::builder()
        .eviction("belady")
        .try_build(MethodBuilder::ggsx().build(&d))
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("belady"));
    assert!(!err.available().is_empty());

    let err = GraphCache::builder()
        .admission("belady")
        .try_build(MethodBuilder::ggsx().build(&d))
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("admission"));
}

/// The two post-paper policies work end-to-end: correct answers, bounded
/// capacity, and the policy is reported under its registry name.
#[test]
fn new_policies_selectable_end_to_end() {
    let d = dataset();
    let workload = zipf_workload(&d, 120, 55);
    let baseline = MethodBuilder::ggsx().build(&d);
    let expected: Vec<Vec<GraphId>> = workload.graphs().map(|q| baseline.run(q).answer).collect();
    for spec in ["slru", "slru:protected=0.5", "greedy-dual"] {
        let cache = GraphCache::builder()
            .capacity(10)
            .window(4)
            .cost_model(CostModel::Work)
            .eviction(spec)
            .admission("adaptive")
            .build(MethodBuilder::ggsx().build(&d));
        for (q, want) in workload.graphs().zip(&expected) {
            assert_eq!(&cache.run(q).answer, want, "{spec}");
        }
        assert!(cache.cache_len() <= 10, "{spec} respects capacity");
        assert!(cache.cache_len() > 0, "{spec} cached something");
        let name = spec.split(':').next().unwrap();
        assert_eq!(cache.eviction_name(), name);
        assert_eq!(cache.admission_name(), "adaptive");
    }
}

/// Snapshots record the eviction policy. Restoring under a different
/// policy still loads (policy-private state is reset), and legacy saves
/// without the header keep loading.
#[test]
fn restore_under_different_policy_loads() {
    let dir = std::env::temp_dir().join(format!("gc-policy-engine-{}", std::process::id()));
    let d = dataset();
    let workload = zipf_workload(&d, 60, 11);

    let writer = GraphCache::builder()
        .capacity(10)
        .window(4)
        .cost_model(CostModel::Work)
        .eviction("greedy-dual")
        .build(MethodBuilder::ggsx().build(&d));
    for q in workload.graphs() {
        writer.run(q);
    }
    writer.save(&dir).unwrap();
    let saved_len = writer.cache_len();
    assert!(saved_len > 0);

    // Same policy: restores cleanly.
    let same = GraphCache::builder()
        .eviction("greedy-dual")
        .build(MethodBuilder::ggsx().build(&d));
    same.restore(&dir).unwrap();
    assert_eq!(same.cache_len(), saved_len);

    // Different policy: loads (with a reset + warning) and keeps serving.
    let other = GraphCache::builder()
        .capacity(10)
        .window(4)
        .cost_model(CostModel::Work)
        .eviction("slru")
        .build(MethodBuilder::ggsx().build(&d));
    other.restore(&dir).unwrap();
    assert_eq!(other.cache_len(), saved_len);
    let baseline = MethodBuilder::ggsx().build(&d);
    for q in workload.graphs().take(20) {
        assert_eq!(other.run(q).answer, baseline.run(q).answer);
    }

    // Legacy save: strip the policy header; the restore still succeeds.
    let entries = dir.join("entries.txt");
    let text = std::fs::read_to_string(&entries).unwrap();
    assert!(text.lines().any(|l| l == "policy greedy-dual"));
    let legacy: String = text
        .lines()
        .filter(|l| !l.starts_with("policy "))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&entries, legacy).unwrap();
    let from_legacy = GraphCache::builder()
        .eviction("hd")
        .build(MethodBuilder::ggsx().build(&d));
    from_legacy.restore(&dir).unwrap();
    assert_eq!(from_legacy.cache_len(), saved_len);

    std::fs::remove_dir_all(&dir).ok();
}

/// A user-defined policy registered at runtime is constructible by name
/// and drives a cache end-to-end — the registry is open, not a closed
/// enum. (The README walks through this pattern; `examples/custom_policy.rs`
/// is the compilable version.)
#[test]
fn custom_policy_registers_and_runs() {
    /// Evicts the oldest entries regardless of hits (FIFO).
    #[derive(Debug, Default)]
    struct Fifo;

    impl EvictionPolicy for Fifo {
        fn name(&self) -> &str {
            "fifo-test"
        }

        fn select_victims(&mut self, view: &PolicyView<'_>, evict: usize) -> Vec<QuerySerial> {
            let mut serials: Vec<QuerySerial> = view.rows().iter().map(|r| r.serial).collect();
            serials.sort_unstable();
            serials.truncate(evict.min(view.len()));
            serials
        }
    }

    registry::register_eviction("fifo-test", |_params| Ok(Box::new(Fifo)));
    assert!(registry::eviction_names().contains(&"fifo-test".to_string()));

    let d = dataset();
    let workload = zipf_workload(&d, 60, 91);
    let baseline = MethodBuilder::ggsx().build(&d);
    let cache = GraphCache::builder()
        .capacity(6)
        .window(3)
        .cost_model(CostModel::Work)
        .eviction("fifo-test")
        .build(MethodBuilder::ggsx().build(&d));
    for q in workload.graphs() {
        assert_eq!(cache.run(q).answer, baseline.run(q).answer);
    }
    assert!(cache.cache_len() <= 6);
    assert_eq!(cache.eviction_name(), "fifo-test");
}
