//! Incremental == full: equivalence of delta-maintained sharded indexes
//! with stop-the-world rebuilds.
//!
//! * **Property** — after any random admit/evict/compact sequence, the
//!   incrementally patched shards return the same candidates as a fresh
//!   `CacheSnapshot::build_sharded` over the surviving entries — and a
//!   compacted shard returns *byte-identical* `HitCandidates` (same slots,
//!   same order) to a freshly built shard over the same entries.
//! * **Replay** — a sharded cache answers a Zipf workload exactly like a
//!   single-shard one (and like the bare method), and both converge on the
//!   same cached set under the same deterministic policy.

use graphcache::core::{
    find_hits_naive, find_hits_opts, shard_for, CacheEntry, CacheSnapshot, CostModel, GraphCache,
    HitQuery, QueryIndexConfig, QuerySerial, Shard, VerifyOptions,
};
use graphcache::index::paths::enumerate_paths;
use graphcache::prelude::*;
use graphcache::subiso::{MatchConfig, Vf2};
use graphcache::workload::generate_type_a;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Arc;

fn path_graph(labels: &[u32]) -> LabeledGraph {
    let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
    LabeledGraph::from_parts(labels.to_vec(), &edges)
}

/// A small deterministic query graph derived from a seed: a labelled path,
/// sometimes closed into a cycle, over a 4-letter alphabet so containment
/// relations between generated graphs are common.
fn seeded_graph(seed: u64) -> LabeledGraph {
    let len = 2 + (seed % 4) as usize;
    let labels: Vec<u32> = (0..len).map(|i| ((seed >> (2 * i)) & 3) as u32).collect();
    let mut edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
    if len > 2 && seed.is_multiple_of(5) {
        edges.push((len as u32 - 1, 0)); // close the cycle
    }
    LabeledGraph::from_parts(labels, &edges)
}

fn entry_for(serial: QuerySerial, seed: u64) -> Arc<CacheEntry> {
    let graph = seeded_graph(seed);
    let cfg = QueryIndexConfig::default();
    let profile = enumerate_paths(&graph, cfg.max_path_len, cfg.work_cap);
    Arc::new(CacheEntry::new(
        serial,
        Arc::new(graph),
        vec![GraphId((serial % 3) as u32)],
        QueryKind::Subgraph,
        profile,
    ))
}

fn probes() -> Vec<LabeledGraph> {
    vec![
        path_graph(&[0, 1]),
        path_graph(&[1, 0, 1]),
        path_graph(&[2, 3]),
        path_graph(&[0, 0, 0]),
        path_graph(&[3, 2, 1, 0]),
        path_graph(&[1, 1]),
        path_graph(&[0, 1, 2, 3, 0, 1]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random admit/evict/compact traces leave the sharded incremental
    /// state candidate-equivalent to a fresh build of the live entries.
    #[test]
    fn incremental_equals_full_rebuild(
        ops in pvec((0u8..4, 0u64..1_000_000), 1..80usize),
        n_shards in 1usize..6,
    ) {
        let cfg = QueryIndexConfig::default();
        // The incrementally maintained state: one Arc per shard, patched
        // exactly like window::maintain patches the live shards.
        let mut shards: Vec<Arc<Shard>> =
            (0..n_shards).map(|_| Arc::new(Shard::empty(cfg))).collect();
        // Ground truth: the live entries in admission order.
        let mut live: Vec<Arc<CacheEntry>> = Vec::new();
        let mut next_serial: QuerySerial = 0;

        for &(op, seed) in &ops {
            match op {
                // Admit a new entry (ops 0 and 1: admissions dominate so
                // the cache actually grows).
                0 | 1 => {
                    next_serial += 1;
                    let e = entry_for(next_serial, seed);
                    live.push(e.clone());
                    Arc::make_mut(&mut shards[shard_for(e.serial, n_shards)]).insert(e);
                }
                // Evict a random live entry (tombstone in place).
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.remove(seed as usize % live.len());
                    let removed = Arc::make_mut(
                        &mut shards[shard_for(victim.serial, n_shards)],
                    )
                    .remove(victim.serial);
                    prop_assert!(removed, "live entry must be removable");
                }
                // Compact a random shard (the debt-threshold fallback).
                _ => {
                    Arc::make_mut(&mut shards[seed as usize % n_shards]).compact();
                }
            }
        }

        let incremental = CacheSnapshot::from_shards(cfg, shards.clone());
        let fresh = CacheSnapshot::build_sharded(cfg, n_shards, live.clone());
        prop_assert_eq!(incremental.len(), live.len());

        for probe in probes() {
            // Candidate serials agree exactly (same order: shards preserve
            // admission order of their surviving entries).
            let got = incremental.candidate_serials(&probe);
            let want = fresh.candidate_serials(&probe);
            prop_assert_eq!(&got, &want, "probe {:?}", &probe);
            // And as sets they match the monolithic single-shard build.
            let flat = CacheSnapshot::build(cfg, live.clone());
            let (mut fs, mut fp) = flat.candidate_serials(&probe);
            let (mut gs, mut gp) = got;
            fs.sort_unstable();
            fp.sort_unstable();
            gs.sort_unstable();
            gp.sort_unstable();
            prop_assert_eq!(gs, fs);
            prop_assert_eq!(gp, fp);
        }

        // After compaction, each shard's HitCandidates are byte-identical
        // (same slots, same order) to a freshly built shard.
        for (i, shard) in shards.iter().enumerate() {
            let mut compacted = shard.as_ref().clone();
            compacted.compact();
            let rebuilt = Shard::build(
                cfg,
                shard.live_entries().cloned().collect::<Vec<_>>(),
            );
            for probe in probes() {
                let profile = enumerate_paths(&probe, cfg.max_path_len, cfg.work_cap);
                let (qn, qm) = (probe.node_count() as u32, probe.edge_count() as u32);
                let a = compacted.index().candidates_from_profile(&profile, qn, qm);
                let b = rebuilt.index().candidates_from_profile(&profile, qn, qm);
                prop_assert_eq!(a.sub, b.sub, "shard {} sub slots", i);
                prop_assert_eq!(a.super_, b.super_, "shard {} super slots", i);
            }
        }
    }

    /// Entry lookup routes to the right shard for any serial and count.
    #[test]
    fn entry_lookup_after_churn(
        serials in pvec(1u64..10_000, 1..40usize),
        n_shards in 1usize..8,
    ) {
        let cfg = QueryIndexConfig::default();
        let mut unique = serials.clone();
        unique.sort_unstable();
        unique.dedup();
        let entries: Vec<Arc<CacheEntry>> =
            unique.iter().map(|&s| entry_for(s, s)).collect();
        let snap = CacheSnapshot::build_sharded(cfg, n_shards, entries);
        for &s in &unique {
            prop_assert_eq!(snap.entry(s).map(|e| e.serial), Some(s));
        }
        prop_assert!(snap.entry(0).is_none());
        prop_assert!(snap.entry(10_001).is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The arena-backed candidate sweep (packed postings directory +
    /// SoA entry columns) is an implementation detail: for any churned
    /// state — tombstones included — and after hot-ranked compaction
    /// reorders the slots, [`find_hits_opts`] over the arena layout
    /// returns exactly the `HitSet` of the pointer-rich
    /// [`find_hits_naive`] sweep that visits every live entry directly.
    /// Pinned across 1/4/16 shards with mixed entry directions.
    #[test]
    fn arena_sweep_equals_pointer_sweep(
        seeds in pvec(0u64..1_000_000, 5..50usize),
        evicts in pvec(any::<bool>(), 5..50usize),
        ranks in pvec(0u64..16, 5..50usize),
        shard_sel in 0usize..3,
    ) {
        let n_shards = [1usize, 4, 16][shard_sel];
        let cfg = QueryIndexConfig::default();
        let entry_with_kind = |serial: QuerySerial, seed: u64| {
            let graph = seeded_graph(seed);
            let profile = enumerate_paths(&graph, cfg.max_path_len, cfg.work_cap);
            let kind = if seed.is_multiple_of(3) {
                QueryKind::Supergraph
            } else {
                QueryKind::Subgraph
            };
            Arc::new(CacheEntry::new(
                serial,
                Arc::new(graph),
                vec![GraphId((serial % 3) as u32)],
                kind,
                profile,
            ))
        };

        let mut shards: Vec<Arc<Shard>> =
            (0..n_shards).map(|_| Arc::new(Shard::empty(cfg))).collect();
        for (i, &seed) in seeds.iter().enumerate() {
            let serial = i as QuerySerial + 1;
            let e = entry_with_kind(serial, seed);
            Arc::make_mut(&mut shards[shard_for(serial, n_shards)]).insert(e);
        }
        // Tombstone a subset so the packed postings carry dead slots —
        // the sweep must skip them, not resurrect them.
        for (i, _) in seeds.iter().enumerate() {
            let serial = i as QuerySerial + 1;
            if evicts[i % evicts.len()] && i > 0 {
                Arc::make_mut(&mut shards[shard_for(serial, n_shards)]).remove(serial);
            }
        }

        let check = |snap: &CacheSnapshot| {
            for probe in probes() {
                let naive = find_hits_naive(
                    snap,
                    &probe,
                    QueryKind::Subgraph,
                    &Vf2::new(),
                    &MatchConfig::UNBOUNDED,
                );
                let profile = snap.profile_of(&probe);
                let swept = find_hits_opts(
                    snap,
                    &HitQuery::new(&probe, QueryKind::Subgraph, &profile),
                    &Vf2::new(),
                    &MatchConfig::UNBOUNDED,
                    &VerifyOptions::default(),
                );
                prop_assert_eq!(&swept.sub, &naive.sub, "sub hits, probe {:?}", &probe);
                prop_assert_eq!(&swept.super_, &naive.super_, "super hits, probe {:?}", &probe);
                prop_assert_eq!(swept.exact, naive.exact, "exact hit, probe {:?}", &probe);
            }
        };

        // Churned layout: live slots interleaved with tombstones.
        check(&CacheSnapshot::from_shards(cfg, shards.clone()));

        // Hot-packed layout: every shard compacted with an arbitrary
        // maintenance rank, reordering slots (and the answer/posting
        // arenas with them).
        let ranked: Vec<Arc<Shard>> = shards
            .iter()
            .map(|s| {
                Arc::new(s.compacted_ranked(|serial| ranks[serial as usize % ranks.len()]))
            })
            .collect();
        check(&CacheSnapshot::from_shards(cfg, ranked));
    }
}

/// A sharded cache replays a Zipf workload with exactly the answers of a
/// single-shard cache and of the bare method, and converges on the same
/// cached set (victim selection is global, so sharding must not change
/// policy outcomes).
#[test]
fn sharded_cache_replay_matches_single_shard() {
    let d = datasets::aids_like(0.04, 77);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(150).seed(33));
    let baseline = MethodBuilder::ggsx().build(&d);
    let build = |shards: usize| {
        GraphCache::builder()
            .capacity(8)
            .window(5)
            .cost_model(CostModel::Work)
            .shards(shards)
            .build(MethodBuilder::ggsx().build(&d))
    };
    let flat = build(1);
    let sharded = build(5);
    assert_eq!(sharded.shard_count(), 5);
    for q in workload.graphs() {
        let want = baseline.run(q).answer;
        assert_eq!(flat.run(q).answer, want);
        assert_eq!(sharded.run(q).answer, want);
    }
    let cached = |c: &GraphCache| {
        c.with_stats(|s| {
            let mut keys: Vec<QuerySerial> = s.keys().collect();
            keys.sort_unstable();
            keys
        })
    };
    assert_eq!(cached(&flat), cached(&sharded), "same cached set");
    assert!(sharded.cache_len() <= 8);
    // Maintenance actually exercised the delta path.
    let m = sharded.maint_stats();
    assert!(m.rounds > 0);
    assert!(m.entries_admitted > 0);
    assert!(m.shards_patched > 0);
}
