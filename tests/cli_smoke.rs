//! End-to-end CLI smoke test: drives the compiled `gc` binary through the
//! full generate → workload → query → bench pipeline, validates the
//! emitted JSON against the harness parser, and pins the exit-code
//! contract (0 success / 1 runtime / 2 usage / 3 bench drift /
//! 4 daemon unreachable).

use gc_harness::{Json, MatrixReport};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Absolute path of the compiled `gc` binary under test.
fn gc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_gc")
}

/// Per-test scratch directory (tests run in parallel in one process, so
/// the name carries both the pid and the test's own tag).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gc-cli-smoke-{}-{tag}", std::process::id()));
        // A previous crashed run may have left the directory behind.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(gc_bin())
        .args(args)
        .output()
        .expect("spawn gc binary")
}

#[track_caller]
fn assert_exit(args: &[&str], expected: i32) -> Output {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(expected),
        "gc {:?}\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

/// The full pipeline a user runs by hand, plus JSON validation of the
/// bench output — every deterministic counter key the gate relies on must
/// be present in every scenario.
#[test]
fn pipeline_generate_workload_query_bench() {
    let tmp = Scratch::new("pipeline");
    let dataset = tmp.path("aids.txt");
    let queries = tmp.path("queries.txt");
    let json = tmp.path("bench.json");

    assert_exit(
        &[
            "generate",
            "--profile",
            "aids",
            "--scale",
            "0.01",
            "--seed",
            "7",
            "--out",
            &dataset,
        ],
        0,
    );
    assert_exit(
        &[
            "workload",
            "--dataset",
            &dataset,
            "--kind",
            "zz",
            "--count",
            "20",
            "--seed",
            "9",
            "--out",
            &queries,
        ],
        0,
    );
    let out = assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--capacity",
            "10",
            "--window",
            "5",
        ],
        0,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("20 queries"), "query summary: {stdout}");

    assert_exit(&["bench", "--suite", "smoke", "--json", &json], 0);
    let text = std::fs::read_to_string(&json).expect("bench json exists");

    // The file parses with the harness parser and carries the schema.
    let report = MatrixReport::from_json(&text).expect("valid report");
    assert_eq!(report.suite, "smoke");
    assert!(!report.scenarios.is_empty());
    for scenario in &report.scenarios {
        for key in [
            "queries",
            "cache_assisted",
            "exact_hits",
            "exact_fp_hits",
            "empty_shortcuts",
            "truncated",
            "subiso_tests",
            "gc_tests",
            "budget_spent",
            "fragment_probes",
            "fragment_hits",
            "fragment_pruned",
            "maint_rounds",
            "entries_admitted",
            "entries_evicted",
            "shards_patched",
            "compactions",
            "fragments_built",
            "fragments_evicted",
            "cache_entries",
            "memory_bytes",
        ] {
            assert!(
                scenario.counter(key).is_some(),
                "scenario {} is missing counter {key}",
                scenario.name
            );
        }
        assert!(scenario.counter("queries").unwrap() > 0);
    }

    // The raw document is also plain JSON for any other tool.
    let doc = gc_harness::json::parse(&text).expect("plain json");
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
}

/// Two runs of the same suite write byte-identical files (deterministic
/// counters; wall-clock is excluded without --timings), a run checked
/// against its own output passes, and a perturbed baseline trips the gate
/// with the dedicated exit code.
#[test]
fn bench_is_deterministic_and_gates_drift() {
    let tmp = Scratch::new("determinism");
    let first = tmp.path("first.json");
    let second = tmp.path("second.json");

    assert_exit(&["bench", "--suite", "smoke", "--json", &first], 0);
    assert_exit(&["bench", "--suite", "smoke", "--json", &second], 0);
    let a = std::fs::read(&first).unwrap();
    let b = std::fs::read(&second).unwrap();
    assert_eq!(a, b, "smoke suite JSON must be bit-identical across runs");

    // Self-check passes even at zero tolerance.
    assert_exit(
        &[
            "bench",
            "--suite",
            "smoke",
            "--check",
            &first,
            "--tolerance",
            "0",
        ],
        0,
    );

    // Perturb one deterministic counter beyond tolerance: the gate must
    // fail with the drift exit code and name the counter.
    let report = MatrixReport::from_json(&String::from_utf8(a).unwrap()).unwrap();
    let victim = &report.scenarios[0];
    let old = victim.counter("subiso_tests").unwrap();
    let perturbed_text = std::fs::read_to_string(&first).unwrap().replace(
        &format!("\"subiso_tests\": {old}"),
        &format!("\"subiso_tests\": {}", old * 2 + 100),
    );
    let perturbed = tmp.path("perturbed.json");
    std::fs::write(&perturbed, perturbed_text).unwrap();
    let out = assert_exit(
        &[
            "bench",
            "--suite",
            "smoke",
            "--check",
            &perturbed,
            "--tolerance",
            "5",
        ],
        3,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("subiso_tests"),
        "drift names the counter: {stderr}"
    );

    // With --timings the advisory block appears; the file still parses
    // and the deterministic counters are unchanged.
    let timed = tmp.path("timed.json");
    assert_exit(
        &["bench", "--suite", "smoke", "--json", &timed, "--timings"],
        0,
    );
    let timed_text = std::fs::read_to_string(&timed).unwrap();
    assert!(timed_text.contains("\"advisory\""));
    let timed_report = MatrixReport::from_json(&timed_text).unwrap();
    assert_eq!(
        timed_report.scenarios[0].counters, report.scenarios[0].counters,
        "--timings must not change deterministic counters"
    );
}

/// The committed baseline matches what this build produces: the CI gate
/// (`--check benches/baseline.json`) is exercised here too, so a code
/// change that shifts counters fails locally before it fails in CI.
#[test]
fn committed_baseline_is_current() {
    let baseline = Path::new(env!("CARGO_MANIFEST_DIR")).join("benches/baseline.json");
    assert!(
        baseline.is_file(),
        "benches/baseline.json is missing — run scripts/refresh-baseline.sh"
    );
    assert_exit(
        &[
            "bench",
            "--suite",
            "smoke",
            "--check",
            baseline.to_str().unwrap(),
            "--tolerance",
            "5",
        ],
        0,
    );

    // Same bar for the fragment-cache suite and its own baseline.
    let fragments = Path::new(env!("CARGO_MANIFEST_DIR")).join("benches/baseline-fragments.json");
    assert!(
        fragments.is_file(),
        "benches/baseline-fragments.json is missing — run scripts/refresh-baseline.sh"
    );
    assert_exit(
        &[
            "bench",
            "--suite",
            "fragments",
            "--check",
            fragments.to_str().unwrap(),
            "--tolerance",
            "5",
        ],
        0,
    );
}

/// Exit-code contract: usage errors are 2, runtime failures are 1, and
/// stderr says what went wrong.
#[test]
fn exit_codes_are_distinct() {
    let tmp = Scratch::new("exit-codes");
    let dataset = tmp.path("d.txt");
    let queries = tmp.path("q.txt");
    assert_exit(
        &[
            "generate",
            "--profile",
            "aids",
            "--scale",
            "0.01",
            "--seed",
            "3",
            "--out",
            &dataset,
        ],
        0,
    );
    assert_exit(
        &[
            "workload",
            "--dataset",
            &dataset,
            "--kind",
            "uu",
            "--count",
            "5",
            "--seed",
            "3",
            "--out",
            &queries,
        ],
        0,
    );

    // Usage errors → 2.
    assert_exit(&[], 2);
    assert_exit(&["frobnicate"], 2);
    assert_exit(&["generate", "--profile", "nope", "--out", "x"], 2);
    assert_exit(&["generate", "--profile"], 2); // flag without its value
    assert_exit(&["query", "--queries", &queries], 2); // missing --dataset
    assert_exit(
        &[
            "workload",
            "--dataset",
            &dataset,
            "--kind",
            "zzz",
            "--out",
            "x",
        ],
        2,
    );
    assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--method",
            "nope",
        ],
        2,
    );
    assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--eviction",
            "nope",
        ],
        2,
    );
    assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--capacity",
            "many",
        ],
        2,
    );
    // An unknown fragment policy fails fast and lists what exists.
    let out = assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--fragment-eviction",
            "nope",
        ],
        2,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("available"),
        "unknown fragment policy lists the registry: {stderr}"
    );
    // --fragments only takes on|off.
    assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--fragments",
            "maybe",
        ],
        2,
    );
    assert_exit(&["bench", "--suite", "nope"], 2);
    assert_exit(&["bench", "--tolerance", "-1"], 2);
    // NaN/inf tolerances would disable the gate silently.
    assert_exit(&["bench", "--tolerance", "NaN"], 2);
    assert_exit(&["bench", "--tolerance", "inf"], 2);

    // Runtime failures → 1.
    assert_exit(&["stats", &tmp.path("missing.txt")], 1);
    assert_exit(
        &[
            "query",
            "--dataset",
            &tmp.path("missing.txt"),
            "--queries",
            &queries,
        ],
        1,
    );
    assert_exit(
        &[
            "bench",
            "--suite",
            "smoke",
            "--check",
            &tmp.path("missing.json"),
        ],
        1,
    );
    let restore_out = assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--restore",
            &tmp.path("no-such-save"),
        ],
        1,
    );
    let stderr = String::from_utf8_lossy(&restore_out.stderr);
    assert!(
        stderr.contains("cannot restore") && stderr.contains("no-such-save"),
        "restore error must name the directory: {stderr}"
    );

    // A malformed baseline is a runtime error, not drift.
    let bad = tmp.path("bad.json");
    std::fs::write(&bad, "{not json").unwrap();
    assert_exit(&["bench", "--suite", "smoke", "--check", &bad], 1);
}

/// Exit-code contract for the daemon-facing subcommands (`serve`, `ctl`,
/// `query --connect`, `bench --serve`): bad invocations are usage errors
/// (2), unreachable daemons are the dedicated unavailable code (4) —
/// distinct from in-session runtime failures (1). The happy path lives
/// in tests/serve_smoke.rs and scripts/serve-smoke.sh.
#[test]
fn serve_and_ctl_exit_codes() {
    let tmp = Scratch::new("serve-exit-codes");
    let dataset = tmp.path("d.txt");
    let queries = tmp.path("q.txt");
    assert_exit(
        &[
            "generate",
            "--profile",
            "aids",
            "--scale",
            "0.01",
            "--seed",
            "3",
            "--out",
            &dataset,
        ],
        0,
    );
    assert_exit(
        &[
            "workload",
            "--dataset",
            &dataset,
            "--kind",
            "zz",
            "--count",
            "5",
            "--seed",
            "3",
            "--out",
            &queries,
        ],
        0,
    );

    // Usage errors → 2.
    let sock = tmp.path("never-bound.sock");
    // serve without any listener.
    assert_exit(&["serve", "--dataset", &dataset], 2);
    // serve without a dataset.
    assert_exit(&["serve", "--unix", &sock], 2);
    // serve with an unknown policy fails before binding anything.
    assert_exit(
        &[
            "serve",
            "--dataset",
            &dataset,
            "--unix",
            &sock,
            "--eviction",
            "nope",
        ],
        2,
    );
    // ... and the fragment-store policy gets the same early validation.
    assert_exit(
        &[
            "serve",
            "--dataset",
            &dataset,
            "--unix",
            &sock,
            "--fragment-eviction",
            "nope",
        ],
        2,
    );
    // ctl without a target / with two targets / with an unknown command.
    assert_exit(&["ctl", "ping"], 2);
    assert_exit(&["ctl", "--unix", &sock, "--tcp", "localhost:1", "ping"], 2);
    assert_exit(&["ctl", "--unix", &sock, "frobnicate"], 2);
    assert_exit(&["ctl", "--unix", &sock], 2); // no command at all
                                               // query --connect with a malformed target or missing --queries.
    assert_exit(
        &["query", "--connect", "not-a-target", "--queries", &queries],
        2,
    );
    assert_exit(&["query", "--connect", &format!("unix:{sock}")], 2);
    // --timeout must be a positive number of seconds.
    assert_exit(&["ctl", "--unix", &sock, "--timeout", "0", "ping"], 2);
    assert_exit(&["ctl", "--unix", &sock, "--timeout", "soon", "ping"], 2);
    // --snapshot-every without a snapshot target is a usage error.
    assert_exit(
        &[
            "serve",
            "--dataset",
            &dataset,
            "--unix",
            &sock,
            "--snapshot-every",
            "5",
        ],
        2,
    );

    // Unreachable daemon → 4 (distinct from in-session failures at 1), so
    // scripts can tell "daemon down, maybe retry" from "request failed".
    let out = assert_exit(&["ctl", "--unix", &sock, "ping"], 4);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot connect"),
        "connect failure names the problem: {stderr}"
    );
    // A timeout/retry budget doesn't change the classification.
    assert_exit(&["ctl", "--unix", &sock, "--timeout", "1", "ping"], 4);
    assert_exit(
        &[
            "query",
            "--connect",
            &format!("unix:{sock}"),
            "--queries",
            &queries,
            "--retries",
            "1",
        ],
        4,
    );
    assert_exit(
        &[
            "query",
            "--connect",
            &format!("unix:{sock}"),
            "--queries",
            &queries,
        ],
        4,
    );
    // serve with a dataset that doesn't exist fails before binding, so the
    // daemon never starts and the test can't hang on it.
    assert_exit(
        &[
            "serve",
            "--dataset",
            &tmp.path("missing.txt"),
            "--unix",
            &sock,
        ],
        1,
    );
}

/// Save → restore round-trips through the CLI (the happy path the
/// restore error message points at).
#[test]
fn save_then_restore_succeeds() {
    let tmp = Scratch::new("save-restore");
    let dataset = tmp.path("d.txt");
    let queries = tmp.path("q.txt");
    let saved = tmp.path("saved-cache");
    assert_exit(
        &[
            "generate",
            "--profile",
            "aids",
            "--scale",
            "0.01",
            "--seed",
            "5",
            "--out",
            &dataset,
        ],
        0,
    );
    assert_exit(
        &[
            "workload",
            "--dataset",
            &dataset,
            "--kind",
            "zz",
            "--count",
            "10",
            "--seed",
            "5",
            "--out",
            &queries,
        ],
        0,
    );
    assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--save",
            &saved,
        ],
        0,
    );
    let out = assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--restore",
            &saved,
        ],
        0,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("restored"), "{stdout}");
}

/// The fragment flags work end-to-end through the CLI: `--fragments on`
/// reports the fragment-cache summary and the maintenance breakdown
/// carries the fragment-upkeep phase.
#[test]
fn fragments_flags_smoke() {
    let tmp = Scratch::new("fragments");
    let dataset = tmp.path("d.txt");
    let queries = tmp.path("q.txt");
    assert_exit(
        &[
            "generate",
            "--profile",
            "aids",
            "--scale",
            "0.05",
            "--seed",
            "5",
            "--out",
            &dataset,
        ],
        0,
    );
    assert_exit(
        &[
            "workload",
            "--dataset",
            &dataset,
            "--kind",
            "zz",
            "--count",
            "30",
            "--seed",
            "5",
            "--out",
            &queries,
        ],
        0,
    );
    let out = assert_exit(
        &[
            "query",
            "--dataset",
            &dataset,
            "--queries",
            &queries,
            "--method",
            "vf2",
            "--fragments",
            "on",
            "--fragment-budget",
            "65536",
            "--fragment-eviction",
            "slru:protected=0.5",
            "--window",
            "5",
            "--maint-stats",
        ],
        0,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("fragment cache:"),
        "fragment summary line: {stdout}"
    );
    assert!(
        stdout.contains("fragments built"),
        "maint-stats fragment line: {stdout}"
    );
    assert!(
        stdout.contains("eviction slru"),
        "fragment eviction name echoed: {stdout}"
    );

    // Off stays silent: no fragment summary, counters absent from output.
    let out = assert_exit(&["query", "--dataset", &dataset, "--queries", &queries], 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("fragment cache:"), "{stdout}");
}
