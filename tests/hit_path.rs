//! Hit-path parity: the cost-ordered / fingerprint-first / parallel
//! verification pipeline is hit-equivalent to the naive flat sweep.
//!
//! * **Unbounded parity** — with no budget, the ordered pipeline (sequential
//!   and parallel) returns exactly the same `HitSet` (sub, super, exact) as
//!   [`find_hits_naive`] over random graph mixes, across 1/4/16 shards.
//! * **Budget soundness** — any budgeted run yields a *subset* of the
//!   unbounded hits, never a wrong one, and flags truncation whenever it
//!   stopped short.
//! * **Fingerprint fast path** — a query isomorphic to a cached entry
//!   resolves with zero candidate sub-iso tests on the shortcut path.
//!
//! CI runs this file in release mode too (`cargo test --release --test
//! hit_path`) so the ordering/budget logic is exercised with optimizations.

use graphcache::core::processors::{find_hits_naive, find_hits_opts, HitQuery, VerifyOptions};
use graphcache::core::{CacheEntry, CacheSnapshot, HitSet, QueryIndexConfig, QuerySerial};
use graphcache::index::paths::enumerate_paths;
use graphcache::prelude::*;
use graphcache::subiso::{MatchConfig, Vf2};
use graphcache::workload::generate_type_a;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Arc;

/// A small deterministic query graph derived from a seed: a labelled path
/// over a 3-letter alphabet, sometimes closed into a cycle, so containment
/// and isomorphism relations between generated graphs are common.
fn seeded_graph(seed: u64) -> LabeledGraph {
    let len = 2 + (seed % 5) as usize;
    let labels: Vec<u32> = (0..len)
        .map(|i| ((seed >> (2 * i)) & 3) as u32 % 3)
        .collect();
    let mut edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
    if len > 2 && seed.is_multiple_of(7) {
        edges.push((len as u32 - 1, 0)); // close the cycle
    }
    LabeledGraph::from_parts(labels, &edges)
}

fn entry_for(serial: QuerySerial, seed: u64) -> Arc<CacheEntry> {
    let graph = seeded_graph(seed);
    let cfg = QueryIndexConfig::default();
    let profile = enumerate_paths(&graph, cfg.max_path_len, cfg.work_cap);
    Arc::new(CacheEntry::new(
        serial,
        Arc::new(graph),
        vec![GraphId((serial % 4) as u32)],
        QueryKind::Subgraph,
        profile,
    ))
}

fn pipeline(snap: &CacheSnapshot, query: &LabeledGraph, opts: &VerifyOptions) -> HitSet {
    let profile = snap.profile_of(query);
    find_hits_opts(
        snap,
        &HitQuery::new(query, QueryKind::Subgraph, &profile),
        &Vf2::new(),
        &MatchConfig::UNBOUNDED,
        opts,
    )
}

/// `a` is a sub-multiset of `b` (both sorted).
fn sorted_subset(a: &[QuerySerial], b: &[QuerySerial]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.any(|y| y == x))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With an unbounded budget the ordered sequential pipeline, the
    /// parallel pipeline and the naive flat sweep agree exactly — for any
    /// cached mix, any probe, and any shard count.
    #[test]
    fn unbounded_pipeline_matches_naive_sweep(
        seeds in pvec(0u64..4_000, 1..40usize),
        probe_seed in 0u64..4_000,
    ) {
        let cfg = QueryIndexConfig::default();
        let entries: Vec<Arc<CacheEntry>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| entry_for(i as u64 + 1, s))
            .collect();
        // Probe with a fresh graph AND with an exact copy of a cached one,
        // so the exact path is exercised half the time.
        let probes = [
            seeded_graph(probe_seed),
            entries[probe_seed as usize % entries.len()].graph.as_ref().clone(),
        ];
        for shards in [1usize, 4, 16] {
            let snap = CacheSnapshot::build_sharded(cfg, shards, entries.clone());
            for probe in &probes {
                let naive = find_hits_naive(
                    &snap, probe, QueryKind::Subgraph, &Vf2::new(), &MatchConfig::UNBOUNDED,
                );
                let seq = pipeline(&snap, probe, &VerifyOptions::default());
                let par = pipeline(&snap, probe, &VerifyOptions {
                    threads: 4,
                    parallel_threshold: 2,
                    ..VerifyOptions::default()
                });
                for (label, got) in [("sequential", &seq), ("parallel", &par)] {
                    prop_assert_eq!(&got.sub, &naive.sub, "{} sub, {} shards", label, shards);
                    prop_assert_eq!(&got.super_, &naive.super_, "{} super, {} shards", label, shards);
                    prop_assert_eq!(got.exact, naive.exact, "{} exact, {} shards", label, shards);
                    prop_assert!(!got.truncated, "{} must not truncate unbounded", label);
                }
            }
        }
    }

    /// Budgeted runs degrade gracefully: every reported hit is also found
    /// by the unbounded sweep, and a run that did not truncate reports the
    /// full hit set.
    #[test]
    fn budgeted_hits_are_a_sound_subset(
        seeds in pvec(0u64..4_000, 1..30usize),
        probe_seed in 0u64..4_000,
        budget in 0u64..2_000,
        threads in 1usize..5,
    ) {
        let cfg = QueryIndexConfig::default();
        let entries: Vec<Arc<CacheEntry>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| entry_for(i as u64 + 1, s))
            .collect();
        let probe = seeded_graph(probe_seed);
        let snap = CacheSnapshot::build_sharded(cfg, 4, entries);
        let full = pipeline(&snap, &probe, &VerifyOptions::default());
        let budgeted = pipeline(&snap, &probe, &VerifyOptions {
            budget: Some(budget),
            threads,
            parallel_threshold: 2,
            ..VerifyOptions::default()
        });
        prop_assert!(sorted_subset(&budgeted.sub, &full.sub));
        prop_assert!(sorted_subset(&budgeted.super_, &full.super_));
        if let Some(e) = budgeted.exact {
            prop_assert_eq!(Some(e), full.exact);
        }
        // The budgeted run tests a (possibly clipped) subset of the full
        // sweep's candidates, so it can never spend more matcher work.
        prop_assert!(budgeted.work <= full.work,
            "budgeted work {} > unbounded work {}", budgeted.work, full.work);
        if !budgeted.truncated {
            // Nothing was cut short, so nothing may be missing.
            prop_assert_eq!(&budgeted.sub, &full.sub);
            prop_assert_eq!(&budgeted.super_, &full.super_);
            prop_assert_eq!(budgeted.exact, full.exact);
        }
    }

    /// The request's hit budget early-exits with exactly-enough hits (when
    /// that many exist) and never flags truncation.
    #[test]
    fn hit_budget_early_exit(
        seeds in pvec(0u64..4_000, 1..30usize),
        probe_seed in 0u64..4_000,
        max_hits in 1usize..4,
    ) {
        let cfg = QueryIndexConfig::default();
        let entries: Vec<Arc<CacheEntry>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| entry_for(i as u64 + 1, s))
            .collect();
        let probe = seeded_graph(probe_seed);
        let snap = CacheSnapshot::build_sharded(cfg, 4, entries);
        let full = pipeline(&snap, &probe, &VerifyOptions::default());
        let capped = pipeline(&snap, &probe, &VerifyOptions {
            max_hits: Some(max_hits),
            ..VerifyOptions::default()
        });
        let available = full.sub.len() + full.super_.len();
        let got = capped.sub.len() + capped.super_.len();
        prop_assert!(got <= available);
        prop_assert!(got >= available.min(max_hits), "hit budget undershot");
        // Iso hits land in pairs, so the cap may overshoot by at most one.
        prop_assert!(got <= max_hits + 1, "hit budget overshot");
        prop_assert!(!capped.truncated);
        prop_assert!(sorted_subset(&capped.sub, &full.sub));
        prop_assert!(sorted_subset(&capped.super_, &full.super_));

        // The parallel sweep must honour the same cap: racing workers may
        // *test* extra candidates, but assembly stops admitting hits.
        let par = pipeline(&snap, &probe, &VerifyOptions {
            max_hits: Some(max_hits),
            threads: 4,
            parallel_threshold: 2,
            ..VerifyOptions::default()
        });
        let par_got = par.sub.len() + par.super_.len();
        prop_assert!(par_got >= available.min(max_hits));
        prop_assert!(par_got <= max_hits + 1, "parallel hit budget overshot");
        prop_assert!(sorted_subset(&par.sub, &full.sub));
        prop_assert!(sorted_subset(&par.super_, &full.super_));
    }
}

/// An exact repeat of a cached query resolves through the fingerprint map
/// with zero candidate sub-iso tests, across shard counts — including a
/// node-permuted (isomorphic but not identical) resubmission.
#[test]
fn exact_repeat_zero_tests_via_fingerprint() {
    let cfg = QueryIndexConfig::default();
    let entries: Vec<Arc<CacheEntry>> = (0..25u64).map(|s| entry_for(s + 1, s * 17)).collect();
    for shards in [1usize, 4, 16] {
        let snap = CacheSnapshot::build_sharded(cfg, shards, entries.clone());
        for probe_entry in entries.iter().step_by(5) {
            let probe = probe_entry.graph.as_ref().clone();
            let hits = pipeline(
                &snap,
                &probe,
                &VerifyOptions {
                    exact_shortcut: true,
                    ..VerifyOptions::default()
                },
            );
            assert!(hits.exact.is_some(), "repeat must hit ({shards} shards)");
            assert!(hits.exact_via_fingerprint);
            assert_eq!(hits.tests, 0, "zero candidate tests on an exact repeat");
        }
    }
}

/// End-to-end: a cache with a verify budget still answers every query
/// exactly like the uncached baseline (budgeted hit sets only reduce
/// pruning, never correctness), and exact repeats ride the fingerprint.
#[test]
fn budgeted_cache_answers_match_baseline() {
    let d = datasets::aids_like(0.03, 11);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(120).seed(5));
    let baseline = MethodBuilder::ggsx().build(&d);
    let cache = GraphCache::builder()
        .capacity(16)
        .window(4)
        .verify_budget(500)
        .build(MethodBuilder::ggsx().build(&d));
    let mut exact_fp = 0usize;
    for q in workload.graphs() {
        let r = cache.run(q);
        assert_eq!(r.answer, baseline.run(q).answer);
        if r.record.exact_via_fingerprint {
            exact_fp += 1;
            assert_eq!(r.record.gc_tests, 0);
        }
    }
    assert!(exact_fp > 0, "a Zipf workload must produce exact repeats");
}
