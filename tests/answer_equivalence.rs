//! The central correctness invariant (paper's "GC does not produce any
//! false negative or false positive"): for every method, policy and
//! workload, GraphCache returns exactly the same answer sets as the
//! uncached Method M.

use graphcache::core::{CostModel, GraphCache, PolicyKind};
use graphcache::methods::{Method, MethodBuilder, MethodKind};
use graphcache::prelude::*;
use graphcache::workload::{generate_type_a, generate_type_b};

fn check_equivalence(cache: GraphCache, baseline: &Method, workload: &Workload) {
    for (i, q) in workload.graphs().enumerate() {
        let expected = baseline.run(q).answer;
        let got = cache.run(q).answer;
        assert_eq!(
            got,
            expected,
            "answer mismatch at query {i} (method {}, policy {:?})",
            baseline.name(),
            cache.config().policy
        );
    }
}

fn small_dataset() -> GraphDataset {
    datasets::aids_like(0.04, 1001) // 40 graphs
}

#[test]
fn gc_matches_baseline_for_every_ftv_method() {
    let d = small_dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(60).seed(2));
    for kind in MethodKind::FTV {
        let method = kind.build(&d);
        let baseline = kind.build(&d);
        let cache = GraphCache::builder()
            .capacity(15)
            .window(4)
            .cost_model(CostModel::Work)
            .build(method);
        check_equivalence(cache, &baseline, &workload);
    }
}

#[test]
fn gc_matches_baseline_for_every_si_method() {
    let d = small_dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zu(1.4).count(40).seed(3));
    for kind in MethodKind::SI {
        let method = kind.build(&d);
        let baseline = kind.build(&d);
        let cache = GraphCache::builder()
            .capacity(15)
            .window(4)
            .cost_model(CostModel::Work)
            .build(method);
        check_equivalence(cache, &baseline, &workload);
    }
}

#[test]
fn gc_matches_baseline_for_every_policy() {
    let d = small_dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.7).count(60).seed(4));
    for policy in PolicyKind::ALL {
        let method = MethodBuilder::ggsx().build(&d);
        let baseline = MethodBuilder::ggsx().build(&d);
        let cache = GraphCache::builder()
            .capacity(10)
            .window(3)
            .policy(policy)
            .cost_model(CostModel::Work)
            .build(method);
        check_equivalence(cache, &baseline, &workload);
    }
}

#[test]
fn gc_matches_baseline_on_no_answer_workloads() {
    let d = small_dataset();
    let cfg = TypeBConfig::with_no_answer_prob(0.5)
        .pools(15, 6)
        .count(50)
        .sizes(vec![4, 8])
        .seed(5);
    let workload = generate_type_b(&d, &cfg);
    assert!(workload.no_answer_fraction() > 0.2);
    let method = MethodBuilder::ggsx().build(&d);
    let baseline = MethodBuilder::ggsx().build(&d);
    let cache = GraphCache::builder()
        .capacity(12)
        .window(4)
        .cost_model(CostModel::Work)
        .build(method);
    check_equivalence(cache, &baseline, &workload);
}

#[test]
fn gc_matches_baseline_with_admission_control() {
    let d = small_dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(60).seed(6));
    let method = MethodBuilder::ggsx().build(&d);
    let baseline = MethodBuilder::ggsx().build(&d);
    let cache = GraphCache::builder()
        .capacity(10)
        .window(5)
        .admission(graphcache::core::AdmissionConfig::enabled())
        .cost_model(CostModel::Work)
        .build(method);
    check_equivalence(cache, &baseline, &workload);
}

#[test]
fn gc_matches_baseline_in_background_mode() {
    let d = small_dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(80).seed(7));
    let method = MethodBuilder::ggsx().build(&d);
    let baseline = MethodBuilder::ggsx().build(&d);
    let cache = GraphCache::builder()
        .capacity(12)
        .window(4)
        .background(true)
        .cost_model(CostModel::Work)
        .build(method);
    for q in workload.graphs() {
        let expected = baseline.run(q).answer;
        assert_eq!(cache.run(q).answer, expected);
    }
    cache.flush_pending();
    assert!(cache.cache_len() <= 12);
}

#[test]
fn exact_repeats_answered_identically_from_cache() {
    let d = small_dataset();
    let workload = generate_type_a(&d, &TypeAConfig::uu().count(10).seed(8));
    let method = MethodBuilder::ct_index().build(&d);
    let baseline = MethodBuilder::ct_index().build(&d);
    let cache = GraphCache::builder()
        .capacity(20)
        .window(2)
        .cost_model(CostModel::Work)
        .build(method);
    // First pass populates, second pass must be all exact hits with
    // unchanged answers.
    let mut first: Vec<Vec<GraphId>> = Vec::new();
    for q in workload.graphs() {
        first.push(cache.run(q).answer);
    }
    for (i, q) in workload.graphs().enumerate() {
        let r = cache.run(q);
        assert_eq!(r.answer, first[i]);
        assert_eq!(r.answer, baseline.run(q).answer);
        assert!(r.record.exact_hit, "query {i} should be an exact hit");
        assert_eq!(r.record.subiso_tests, 0);
    }
}
