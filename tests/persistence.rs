//! Cache persistence across process lifetimes (paper §6.1: stores are
//! loaded on startup and written back on shutdown), in both on-disk
//! representations: the text format and the persist-format-v2 binary
//! arena snapshot. The property tests pin the compat contract — the two
//! formats load into identical caches, re-saves are byte-identical,
//! legacy text saves keep loading, and corrupted binary snapshots fail
//! with typed errors, never a panic.

use graphcache::core::{CostModel, GraphCache, PersistFormat, PersistedCache};
use graphcache::graph::GraphError;
use graphcache::prelude::*;
use graphcache::workload::generate_type_a;
use proptest::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gc-it-persist-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn save_and_restore_preserves_hits_and_answers() {
    let d = datasets::aids_like(0.04, 321);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(40).seed(11));
    let dir = tmpdir("roundtrip");

    // First lifetime: run the workload, persist on shutdown.
    let first = GraphCache::builder()
        .capacity(20)
        .window(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    let mut first_answers = Vec::new();
    for q in workload.graphs() {
        first_answers.push(first.run(q).answer);
    }
    let cached_before = first.cache_len();
    assert!(cached_before > 0);
    first.save(&dir).unwrap();
    drop(first);

    // Second lifetime: restore, replay — answers identical, and previously
    // cached queries hit exactly.
    let second = GraphCache::builder()
        .capacity(20)
        .window(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    second.restore(&dir).unwrap();
    assert_eq!(second.cache_len(), cached_before);

    let mut exact_hits = 0usize;
    for (i, q) in workload.graphs().enumerate() {
        let r = second.run(q);
        assert_eq!(r.answer, first_answers[i], "answer drift after restore");
        exact_hits += r.record.exact_hit as usize;
    }
    assert!(
        exact_hits > 0,
        "restored cache should serve exact hits immediately"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restored_serials_do_not_collide() {
    let d = datasets::aids_like(0.04, 322);
    let workload = generate_type_a(&d, &TypeAConfig::uu().count(10).seed(3));
    let dir = tmpdir("serials");

    let first = GraphCache::builder()
        .capacity(10)
        .window(2)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    let mut max_serial = 0;
    for q in workload.graphs() {
        max_serial = first.run(q).serial;
    }
    first.save(&dir).unwrap();

    let second = GraphCache::builder()
        .capacity(10)
        .window(2)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    second.restore(&dir).unwrap();
    let r = second.run(&workload.queries[0].graph);
    assert!(
        r.serial > max_serial,
        "restored cache must continue serial numbering ({} <= {max_serial})",
        r.serial
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn save_flushes_background_maintenance() {
    let d = datasets::aids_like(0.04, 323);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(20).seed(5));
    let dir = tmpdir("background");
    let gc = GraphCache::builder()
        .capacity(15)
        .window(4)
        .background(true)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    for q in workload.graphs() {
        gc.run(q);
    }
    gc.save(&dir).unwrap();
    let persisted = graphcache::core::PersistedCache::load(&dir).unwrap();
    assert_eq!(persisted.entries.len(), gc.cache_len());
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs a small deterministic workload and returns the warmed cache
/// (plus the dataset so callers can build identically configured fresh
/// caches to restore into).
fn warmed_cache(seed: u64, count: usize, capacity: usize) -> (GraphCache, GraphDataset) {
    let d = datasets::aids_like(0.04, 400 + seed);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(count).seed(seed + 1));
    let gc = GraphCache::builder()
        .capacity(capacity)
        .window(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    for q in workload.graphs() {
        gc.run(q);
    }
    gc.flush_pending();
    (gc, d)
}

fn read_file(dir: &std::path::Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Both formats written from the same cache load into caches the
    /// canonical text encoding cannot tell apart, and each format
    /// re-saves byte-identically — save ∘ load is the identity on disk.
    #[test]
    fn formats_agree_and_resave_identically(
        seed in 0u64..200,
        count in 8usize..30,
        capacity in 5usize..25,
    ) {
        let (gc, _d) = warmed_cache(seed, count, capacity);
        let root = tmpdir(&format!("formats-{seed}-{count}-{capacity}"));
        let text = root.join("text");
        let bin = root.join("bin");
        gc.save_with_format(&text, PersistFormat::Text).unwrap();
        gc.save_with_format(&bin, PersistFormat::Binary).unwrap();

        // Loaded states must agree once both are re-encoded canonically
        // as text (entries, stats and fragments in one comparison).
        let from_text = PersistedCache::load_auto(&text, QueryKind::Subgraph).unwrap();
        let from_bin = PersistedCache::load_auto(&bin, QueryKind::Subgraph).unwrap();
        prop_assert_eq!(from_text.entries.len(), from_bin.entries.len());
        let text2 = root.join("text2");
        let bin_as_text = root.join("bin-as-text");
        from_text.save(&text2).unwrap();
        from_bin.save(&bin_as_text).unwrap();
        for name in ["entries.txt", "stats.txt", "fragments.txt"] {
            prop_assert_eq!(
                read_file(&text2, name),
                read_file(&bin_as_text, name),
                "{} differs between text and binary loads",
                name
            );
        }
        // Text re-save is byte-identical to the original text save.
        for name in ["entries.txt", "stats.txt", "fragments.txt"] {
            prop_assert_eq!(read_file(&text, name), read_file(&text2, name));
        }
        // Binary re-save (profiles included) is byte-identical too.
        let bin2 = root.join("bin2");
        PersistedCache::load_binary(&bin)
            .unwrap()
            .save_binary(&bin2)
            .unwrap();
        prop_assert_eq!(
            read_file(&bin, "snapshot.bin"),
            read_file(&bin2, "snapshot.bin")
        );
        std::fs::remove_dir_all(&root).ok();
    }

    /// A binary snapshot restores into a fresh cache that answers the
    /// original workload identically to a text restore of the same state.
    #[test]
    fn binary_restore_replays_like_text_restore(
        seed in 0u64..200,
        count in 8usize..25,
    ) {
        let (gc, d) = warmed_cache(seed, count, 15);
        let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(count).seed(seed + 1));
        let root = tmpdir(&format!("replay-{seed}-{count}"));
        gc.save_with_format(root.join("text"), PersistFormat::Text).unwrap();
        gc.save_with_format(root.join("bin"), PersistFormat::Binary).unwrap();
        drop(gc);

        let fresh = |dir: std::path::PathBuf| {
            let c = GraphCache::builder()
                .capacity(15)
                .window(4)
                .cost_model(CostModel::Work)
                .build(MethodBuilder::ggsx().build(&d));
            c.restore(dir).unwrap();
            c
        };
        let via_text = fresh(root.join("text"));
        let via_bin = fresh(root.join("bin"));
        prop_assert_eq!(via_text.cache_len(), via_bin.cache_len());
        for q in workload.graphs() {
            let a = via_text.run(q);
            let b = via_bin.run(q);
            prop_assert_eq!(a.answer, b.answer);
            prop_assert_eq!(a.record.exact_hit, b.record.exact_hit);
        }
        std::fs::remove_dir_all(&root).ok();
    }
}

/// Pre-fingerprint, pre-kind-token text saves (the legacy on-disk shape)
/// still load — into the same arena-backed layout as everything else —
/// and restore into a working cache.
#[test]
fn legacy_text_save_loads_into_arena_layout() {
    let (gc, d) = warmed_cache(7, 20, 12);
    let dir = tmpdir("legacy");
    gc.save(&dir).unwrap();
    let cached = gc.cache_len();
    drop(gc);

    // Strip the modern header tokens: "@entry N sub fp:abcd…" → "@entry N",
    // and drop the policy line — the shape written before direction
    // tagging, fingerprints and the policy engine existed.
    let entries = std::fs::read_to_string(dir.join("entries.txt")).unwrap();
    let legacy: String = entries
        .lines()
        .filter(|l| !l.starts_with("policy "))
        .map(|l| {
            if let Some(rest) = l.strip_prefix("@entry ") {
                let serial = rest.split_whitespace().next().unwrap();
                format!("@entry {serial}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    std::fs::write(dir.join("entries.txt"), legacy).unwrap();

    let loaded = PersistedCache::load_auto(&dir, QueryKind::Subgraph).unwrap();
    assert_eq!(loaded.entries.len(), cached);
    let second = GraphCache::builder()
        .capacity(12)
        .window(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    second.restore(&dir).unwrap();
    assert_eq!(second.cache_len(), cached);
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncating or flipping bytes anywhere in a binary snapshot must
/// surface as a typed [`GraphError::Snapshot`] from the load — never a
/// panic, and never a silently wrong cache.
#[test]
fn corrupted_binary_snapshot_fails_typed() {
    let (gc, _d) = warmed_cache(9, 20, 12);
    let dir = tmpdir("corrupt");
    gc.save_with_format(&dir, PersistFormat::Binary).unwrap();
    drop(gc);
    let good = read_file(&dir, "snapshot.bin");
    assert!(PersistedCache::load_binary(&dir).is_ok());

    let expect_snapshot_err = |bytes: &[u8], what: String| {
        std::fs::write(dir.join("snapshot.bin"), bytes).unwrap();
        match PersistedCache::load_binary(&dir) {
            Err(GraphError::Snapshot { .. }) => {}
            other => panic!("{what}: expected GraphError::Snapshot, got {other:?}"),
        }
    };
    // Truncations at coarse steps plus the boundary-sensitive first bytes.
    let step = (good.len() / 64).max(1);
    for cut in (0..good.len()).step_by(step).chain(0..16.min(good.len())) {
        expect_snapshot_err(&good[..cut], format!("truncated to {cut} bytes"));
    }
    // Bit flips anywhere break the checksum.
    for pos in (0..good.len()).step_by((good.len() / 32).max(1)) {
        let mut bad = good.clone();
        bad[pos] ^= 0x40;
        expect_snapshot_err(&bad, format!("flipped byte {pos}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}
