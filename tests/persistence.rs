//! Cache persistence across process lifetimes (paper §6.1: stores are
//! loaded on startup and written back on shutdown).

use graphcache::core::{CostModel, GraphCache};
use graphcache::prelude::*;
use graphcache::workload::generate_type_a;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gc-it-persist-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn save_and_restore_preserves_hits_and_answers() {
    let d = datasets::aids_like(0.04, 321);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(40).seed(11));
    let dir = tmpdir("roundtrip");

    // First lifetime: run the workload, persist on shutdown.
    let first = GraphCache::builder()
        .capacity(20)
        .window(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    let mut first_answers = Vec::new();
    for q in workload.graphs() {
        first_answers.push(first.run(q).answer);
    }
    let cached_before = first.cache_len();
    assert!(cached_before > 0);
    first.save(&dir).unwrap();
    drop(first);

    // Second lifetime: restore, replay — answers identical, and previously
    // cached queries hit exactly.
    let second = GraphCache::builder()
        .capacity(20)
        .window(4)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    second.restore(&dir).unwrap();
    assert_eq!(second.cache_len(), cached_before);

    let mut exact_hits = 0usize;
    for (i, q) in workload.graphs().enumerate() {
        let r = second.run(q);
        assert_eq!(r.answer, first_answers[i], "answer drift after restore");
        exact_hits += r.record.exact_hit as usize;
    }
    assert!(
        exact_hits > 0,
        "restored cache should serve exact hits immediately"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restored_serials_do_not_collide() {
    let d = datasets::aids_like(0.04, 322);
    let workload = generate_type_a(&d, &TypeAConfig::uu().count(10).seed(3));
    let dir = tmpdir("serials");

    let first = GraphCache::builder()
        .capacity(10)
        .window(2)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    let mut max_serial = 0;
    for q in workload.graphs() {
        max_serial = first.run(q).serial;
    }
    first.save(&dir).unwrap();

    let second = GraphCache::builder()
        .capacity(10)
        .window(2)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    second.restore(&dir).unwrap();
    let r = second.run(&workload.queries[0].graph);
    assert!(
        r.serial > max_serial,
        "restored cache must continue serial numbering ({} <= {max_serial})",
        r.serial
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn save_flushes_background_maintenance() {
    let d = datasets::aids_like(0.04, 323);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(20).seed(5));
    let dir = tmpdir("background");
    let gc = GraphCache::builder()
        .capacity(15)
        .window(4)
        .background(true)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    for q in workload.graphs() {
        gc.run(q);
    }
    gc.save(&dir).unwrap();
    let persisted = graphcache::core::PersistedCache::load(&dir).unwrap();
    assert_eq!(persisted.entries.len(), gc.cache_len());
    std::fs::remove_dir_all(&dir).ok();
}
