//! Fragment-cache soundness: intersecting the candidate space with cached
//! fragment occurrence sets never changes an answer.
//!
//! * **Pruned ≡ unpruned** — a fragment-enabled cache answers every query
//!   bit-identically to the bare Method M flat sweep, for random query
//!   mixes across 1/4/16 shards (the proptest below). Pruning by exact
//!   occurrence sets of sub-fragments can only remove non-answers.
//! * **Overflow guard** — a work-cap-truncated fragment decomposition
//!   disables pruning for that query entirely: a partial profile must
//!   never be treated as complete.
//! * **Persistence** — the fragment store survives a save/restore cycle
//!   and keeps pruning soundly afterwards.

use graphcache::core::FragmentConfig;
use graphcache::prelude::*;
use graphcache::workload::generate_type_a;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// A deterministic labelled-path query over a 3-letter alphabet
/// (4–7 nodes, sometimes closed into a cycle). The tiny alphabet makes
/// shared 2–3-edge fragments common across seeds, so the fragment store
/// actually probes and prunes; the index-free `SiVf2` method keeps the
/// baseline an honest flat sweep.
fn seeded_query(seed: u64) -> LabeledGraph {
    let len = 4 + (seed % 4) as usize;
    let labels: Vec<u32> = (0..len)
        .map(|i| ((seed >> (2 * i)) & 3) as u32 % 3)
        .collect();
    let mut edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
    if seed.is_multiple_of(5) {
        edges.push((len as u32 - 1, 0)); // close the cycle
    }
    LabeledGraph::from_parts(labels, &edges)
}

/// A fragment-enabled cache over the index-free baseline method, with a
/// small window so maintenance (and fragment upkeep) runs often.
fn fragment_cache(
    dataset: &GraphDataset,
    shards: usize,
    cfg: Option<FragmentConfig>,
) -> GraphCache {
    let mut builder = GraphCache::builder()
        .capacity(24)
        .window(4)
        .shards(shards)
        .fragments(true);
    if let Some(cfg) = cfg {
        builder = builder.fragment_config(cfg);
    }
    builder.build(MethodBuilder::si_vf2().build(dataset))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance bar of the fragment layer: for any query mix and any
    /// shard count, fragment-pruned answers are bit-identical to the naive
    /// flat sweep's. Seeds repeat with high probability (small range), so
    /// the store populates and later queries really are pruned.
    #[test]
    fn fragment_pruned_answers_match_naive_sweep(
        seeds in pvec(0u64..200, 6..24usize),
    ) {
        let d = datasets::aids_like(0.03, 11);
        let baseline = MethodBuilder::si_vf2().build(&d);
        for shards in [1usize, 4, 16] {
            let cache = fragment_cache(&d, shards, None);
            for &s in &seeds {
                let q = seeded_query(s);
                let got = cache.run(&q).answer;
                let want = baseline.run(&q).answer;
                prop_assert_eq!(got, want, "seed {} diverged on {} shards", s, shards);
            }
        }
    }
}

/// Regression (soundness): a work-cap-truncated `enumerate_paths` profile
/// must never be treated as a complete decomposition. With a 1-work cap
/// every decomposition overflows, so the layer neither probes nor builds —
/// and answers still match the baseline.
#[test]
fn overflow_disables_fragment_pruning() {
    let d = datasets::aids_like(0.03, 11);
    let baseline = MethodBuilder::si_vf2().build(&d);
    let strangled = FragmentConfig {
        work_cap: 1,
        ..FragmentConfig::default()
    };
    let cache = fragment_cache(&d, 4, Some(strangled));
    // Replay a repetitive mix twice over: were the overflow guard broken,
    // the second pass would find fragments to probe.
    for pass in 0..2 {
        for seed in 0..12u64 {
            let q = seeded_query(seed);
            let r = cache.run(&q);
            assert_eq!(
                r.record.fragment_probes, 0,
                "a work-capped decomposition must not probe (pass {pass}, seed {seed})"
            );
            assert_eq!(r.record.fragment_hits, 0);
            assert_eq!(r.record.fragment_pruned, 0);
            assert_eq!(r.answer, baseline.run(&q).answer);
        }
    }
    cache.flush_pending();
    assert_eq!(
        cache.fragment_store_len(),
        0,
        "upkeep must skip overflowing decompositions too"
    );
}

/// The fragment store persists: populate through a real workload, save,
/// restore into a fresh cache, and the restored store keeps the same
/// shape and still answers soundly.
#[test]
fn save_restore_preserves_fragment_store() {
    let dir = std::env::temp_dir().join(format!("gc-fragments-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let d = datasets::aids_like(0.03, 11);
    let baseline = MethodBuilder::si_vf2().build(&d);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.05).count(60).seed(7));
    let cache = fragment_cache(&d, 4, None);
    for q in workload.graphs() {
        cache.run(q);
    }
    cache.flush_pending();
    let stored = cache.fragment_store_len();
    assert!(stored > 0, "the workload must populate the fragment store");
    cache.save(&dir).expect("save");

    let fresh = fragment_cache(&d, 4, None);
    fresh.restore(&dir).expect("restore");
    assert_eq!(
        fresh.fragment_store_len(),
        stored,
        "restore must rebuild the fragment store exactly"
    );
    for seed in 0..16u64 {
        let q = seeded_query(seed);
        assert_eq!(fresh.run(&q).answer, baseline.run(&q).answer);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
