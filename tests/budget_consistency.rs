//! Failure injection: search budgets (the hang guard on NP-complete tests)
//! must degrade gracefully — a budget-limited *hit verification* can only
//! lose cache hits, never change answers; and a budget-limited Method
//! verifier stays consistent between cached and uncached execution.

use graphcache::core::{CostModel, GraphCache};
use graphcache::prelude::*;
use graphcache::subiso::MatchConfig;
use graphcache::workload::generate_type_a;

fn dataset() -> GraphDataset {
    datasets::aids_like(0.04, 777)
}

#[test]
fn tiny_hit_budget_never_changes_answers() {
    let d = dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(50).seed(1));
    let baseline = MethodBuilder::ggsx().build(&d);
    // Hit verification budget of 1 recursion step: almost every cache-hit
    // candidate aborts incomplete and is treated as a non-hit. Answers must
    // be identical to the uncached baseline regardless.
    let cache = GraphCache::builder()
        .capacity(20)
        .window(4)
        .hit_match(MatchConfig::bounded(1))
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().build(&d));
    for (i, q) in workload.graphs().enumerate() {
        let expected = baseline.run(q).answer;
        assert_eq!(cache.run(q).answer, expected, "query {i}");
    }
}

#[test]
fn tiny_hit_budget_reduces_hits_not_correctness() {
    let d = dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(60).seed(2));
    let run_with = |budget: MatchConfig| {
        let cache = GraphCache::builder()
            .capacity(20)
            .window(4)
            .hit_match(budget)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::ggsx().build(&d));
        let mut hits = 0usize;
        for q in workload.graphs() {
            hits += cache.run(q).record.any_hit() as usize;
        }
        hits
    };
    let unbounded = run_with(MatchConfig::UNBOUNDED);
    let strangled = run_with(MatchConfig::bounded(1));
    assert!(
        strangled <= unbounded,
        "budget cannot create hits ({strangled} > {unbounded})"
    );
}

#[test]
fn budgeted_method_verifier_stays_sound() {
    // With a budget-capped (incomplete) Method verifier, GC and baseline
    // may legitimately differ: a cached containment chain g ⊆ g′ ⊆ G is a
    // *proof*, so GC can recover true answers the truncated baseline
    // missed. What must hold is soundness against an unbounded referee:
    // every answer GC adds beyond the baseline is a true containment.
    use graphcache::subiso::{Matcher, Ullmann};
    let d = dataset();
    let workload = generate_type_a(&d, &TypeAConfig::zu(1.4).count(40).seed(3));
    let budget = MatchConfig::bounded(200);
    let referee = Ullmann::new();
    let baseline = MethodBuilder::ggsx().match_config(budget).build(&d);
    let cache = GraphCache::builder()
        .capacity(15)
        .window(4)
        .hit_match(budget)
        .cost_model(CostModel::Work)
        .build(MethodBuilder::ggsx().match_config(budget).build(&d));
    for (i, q) in workload.graphs().enumerate() {
        let expected = baseline.run(q).answer;
        let got = cache.run(q).answer;
        for id in &got {
            if !expected.contains(id) {
                assert!(
                    referee.contains(q, d.graph(*id)),
                    "query {i}: GC added a false answer {id}"
                );
            }
        }
    }
}
