//! End-to-end daemon smoke tests: an in-process `gc serve` [`Server`] on
//! a unix socket, driven through the protocol [`Client`]. Covers the
//! PR's acceptance bar — served counters byte-identical to in-process
//! `run_batch`, deterministic `BUSY` backpressure, `STATS`, graceful
//! drain with persistence — plus raw-socket protocol abuse (malformed
//! and oversized frames).

use graphcache::core::{CostModel, GraphCache, QueryRecord, QueryRequest, RunCounters};
use graphcache::graph::GraphDataset;
use graphcache::methods::MethodBuilder;
use graphcache::server::{
    Client, ClientError, HoldOutcome, QueryFrame, QueryOutcome, ServeConfig, Server, StatsScope,
};
use graphcache::workload::{generate_type_a, DatasetProfile, TypeAConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A per-test unix-socket path (tests run in parallel in one process).
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gc-serve-smoke-{}-{tag}.sock", std::process::id()))
}

fn dataset() -> GraphDataset {
    DatasetProfile::aids().scaled(0.05).generate(11)
}

fn queries(dataset: &GraphDataset, count: usize) -> Vec<graphcache::graph::LabeledGraph> {
    generate_type_a(dataset, &TypeAConfig::zz(1.4).count(count).seed(13))
        .graphs()
        .cloned()
        .collect()
}

/// One cache configuration used for both the served and the in-process
/// side of the parity test. The deterministic work-proxy cost model keeps
/// admission/eviction decisions a pure function of the query sequence, so
/// two separately-built caches replaying the same queries stay in
/// lockstep.
fn make_cache(dataset: &GraphDataset) -> GraphCache {
    let method = MethodBuilder::ggsx().build(dataset);
    GraphCache::builder()
        .capacity(25)
        .window(8)
        .eviction("hd")
        .cost_model(CostModel::Work)
        .try_build(method)
        .expect("cache builds")
}

/// Spawns a daemon on its own socket; returns the join handle. The
/// default `ServeConfig` drain timeout is plenty for tests.
fn spawn_server(
    cache: GraphCache,
    socket: &Path,
    tweak: impl FnOnce(&mut ServeConfig),
) -> std::thread::JoinHandle<Result<(), graphcache::server::ServeError>> {
    let mut cfg = ServeConfig {
        unix: Some(socket.to_path_buf()),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(cache, cfg).expect("bind unix socket");
    std::thread::spawn(move || server.run())
}

/// Connects, tolerating the gap between bind and the accept loop.
fn connect(socket: &Path) -> Client {
    for _ in 0..200 {
        match Client::connect_unix(socket) {
            Ok(client) => return client,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("daemon at {socket:?} never accepted");
}

/// The acceptance bar: replaying a workload through the daemon produces
/// records (and therefore counters) byte-identical to an in-process
/// `run_batch` replay on an identically configured cache, and the settled
/// `STATS` maintenance/cache-shape counters match too.
#[test]
fn served_counters_match_in_process_run_batch() {
    let data = dataset();
    let workload = queries(&data, 40);

    // In-process reference replay.
    let reference = make_cache(&data);
    let in_process: Vec<QueryRecord> = reference
        .run_batch(workload.iter().map(QueryRequest::from))
        .into_iter()
        .map(|resp| resp.result.record)
        .collect();
    reference.flush_pending();

    // Served replay of the same workload on an identical cache.
    let socket = socket_path("parity");
    let daemon = spawn_server(make_cache(&data), &socket, |_| {});
    let mut client = connect(&socket);
    let mut served = Vec::new();
    let mut answers = Vec::new();
    for (i, graph) in workload.iter().enumerate() {
        let frame = QueryFrame {
            id: i as u64,
            graph: graph.clone(),
            kind: None,
            verify_budget: None,
            max_hits: None,
            bypass: false,
            timeout_ms: None,
            allow: None,
        };
        match client.query(frame).expect("query") {
            QueryOutcome::Result(r) => {
                answers.push(r.answer.clone());
                served.push(r.record);
            }
            QueryOutcome::Busy { .. } => panic!("sequential replay must never see BUSY"),
        }
    }
    let stats = client.stats(StatsScope::Settle).expect("stats");
    client.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);

    // Record-level parity: every deterministic field of every query.
    assert_eq!(served.len(), in_process.len());
    for (i, (s, r)) in served.iter().zip(&in_process).enumerate() {
        assert_eq!(
            s.deterministic_fields(),
            r.deterministic_fields(),
            "query {i} diverged"
        );
    }
    // Counter-level parity (what the bench gate compares).
    assert_eq!(
        RunCounters::from_records(&served, 0),
        RunCounters::from_records(&in_process, 0)
    );
    // Answers made it across the wire intact: the record's answer_size
    // equals what arrived, and id lists stay sorted sets.
    for (wire, record) in answers.iter().zip(&served) {
        let answer_size = record
            .deterministic_fields()
            .into_iter()
            .find(|(k, _)| *k == "answer_size")
            .expect("answer_size field")
            .1;
        assert_eq!(wire.len() as u64, answer_size);
        assert!(
            wire.windows(2).all(|w| w[0] < w[1]),
            "answers sorted/deduped"
        );
    }
    // Settled maintenance + cache-shape counters match the reference.
    let stat = |key: &str| {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("STATS missing {key}"))
    };
    let maint = reference.maint_stats();
    for (key, want) in maint.deterministic_counters() {
        assert_eq!(stat(key), want, "{key}");
    }
    assert_eq!(stat("cache_entries"), reference.cache_len() as u64);
    assert_eq!(stat("memory_bytes"), reference.memory_bytes() as u64);
    // The global query counters equal the client-side reconstruction.
    for (key, want) in RunCounters::from_records(&served, 0).deterministic_counters() {
        assert_eq!(stat(key), want, "{key}");
    }
}

/// Several sessions multiplex onto one shared cache concurrently; every
/// query is answered and the global counters account for all of them.
#[test]
fn concurrent_sessions_share_one_cache() {
    let data = dataset();
    let workload = queries(&data, 24);
    let socket = socket_path("concurrent");
    // A wide permit pool: this test is about multiplexing, not BUSY.
    let daemon = spawn_server(make_cache(&data), &socket, |cfg| cfg.max_inflight = 16);

    let clients = 4;
    let per_client = workload.len() / clients;
    std::thread::scope(|s| {
        for c in 0..clients {
            let chunk = &workload[c * per_client..(c + 1) * per_client];
            let socket = &socket;
            s.spawn(move || {
                let mut client = connect(socket);
                client.ping(Some("hello")).expect("ping");
                for (i, graph) in chunk.iter().enumerate() {
                    let frame = QueryFrame {
                        id: i as u64,
                        graph: graph.clone(),
                        kind: None,
                        verify_budget: None,
                        max_hits: None,
                        bypass: false,
                        timeout_ms: None,
                        allow: None,
                    };
                    match client.query(frame).expect("query") {
                        QueryOutcome::Result(_) => {}
                        QueryOutcome::Busy { .. } => {
                            panic!("pool of 16 permits cannot saturate at 4 clients")
                        }
                    }
                }
                // Per-session counters saw exactly this session's share.
                let mine = client.stats(StatsScope::Mine).expect("stats mine");
                let queries = mine
                    .iter()
                    .find(|(k, _)| k == "queries")
                    .map(|&(_, v)| v)
                    .unwrap();
                assert_eq!(queries, per_client as u64);
                client.quit().expect("quit");
            });
        }
    });

    let mut client = connect(&socket);
    let stats = client.stats(StatsScope::Global).expect("stats");
    let stat = |key: &str| {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("STATS missing {key}"))
    };
    assert_eq!(stat("queries"), (per_client * clients) as u64);
    assert_eq!(stat("sessions_total"), clients as u64 + 1);
    assert_eq!(stat("sessions_open"), 1);
    client.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}

/// Backpressure, deterministically: `HOLD` takes the only permit out of
/// the pool, so a second session's `QUERY` must be answered `BUSY`
/// (without executing); after `RELEASE` the same query succeeds. No
/// sleeps, no timing assumptions.
#[test]
fn saturated_permit_pool_yields_busy_then_recovers() {
    let data = dataset();
    let workload = queries(&data, 2);
    let socket = socket_path("busy");
    let daemon = spawn_server(make_cache(&data), &socket, |cfg| cfg.max_inflight = 1);

    let mut holder = connect(&socket);
    assert_eq!(holder.max_inflight(), 1);
    assert_eq!(holder.hold().expect("hold"), HoldOutcome::Held);
    // A second HOLD on the same session is a typed error, not a deadlock.
    match holder.hold() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "already-holding"),
        other => panic!("{other:?}"),
    }

    let mut worker = connect(&socket);
    let frame = |id: u64| QueryFrame {
        id,
        graph: workload[0].clone(),
        kind: None,
        verify_budget: None,
        max_hits: None,
        bypass: false,
        timeout_ms: None,
        allow: None,
    };
    match worker.query(frame(1)).expect("query") {
        QueryOutcome::Busy { inflight, max } => {
            assert_eq!((inflight, max), (1, 1));
        }
        QueryOutcome::Result(_) => panic!("pool is held; the query must be rejected"),
    }

    holder.release().expect("release");
    match worker.query(frame(2)).expect("query") {
        QueryOutcome::Result(r) => assert_eq!(r.id, 2),
        QueryOutcome::Busy { .. } => panic!("permit was released; query must run"),
    }
    // RELEASE without HOLD is a typed error too.
    match worker.release() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "not-holding"),
        other => panic!("{other:?}"),
    }

    let stats = worker.stats(StatsScope::Global).expect("stats");
    let busy = stats
        .iter()
        .find(|(k, _)| k == "busy_rejections")
        .map(|&(_, v)| v)
        .unwrap();
    assert_eq!(busy, 1, "exactly the one held-out query was rejected");
    worker.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}

/// A held permit is returned when its session disconnects, so a crashed
/// operator cannot leak the pool empty.
#[test]
fn held_permit_is_released_on_disconnect() {
    let data = dataset();
    let workload = queries(&data, 1);
    let socket = socket_path("hold-leak");
    let daemon = spawn_server(make_cache(&data), &socket, |cfg| cfg.max_inflight = 1);

    {
        let mut holder = connect(&socket);
        assert_eq!(holder.hold().expect("hold"), HoldOutcome::Held);
        // Dropped without RELEASE — the disconnect must return the permit.
    }
    let mut worker = connect(&socket);
    // The server reaps the dropped session asynchronously; retry briefly.
    let mut served = false;
    for attempt in 0..100 {
        let frame = QueryFrame {
            id: attempt,
            graph: workload[0].clone(),
            kind: None,
            verify_budget: None,
            max_hits: None,
            bypass: false,
            timeout_ms: None,
            allow: None,
        };
        match worker.query(frame).expect("query") {
            QueryOutcome::Result(_) => {
                served = true;
                break;
            }
            QueryOutcome::Busy { .. } => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(served, "permit never came back after the holder vanished");
    worker.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}

/// Graceful drain: `SHUTDOWN` stops the daemon, other connected sessions
/// get `BYE reason=draining`, `run()` returns cleanly, and the snapshot
/// is persisted when configured.
#[test]
fn shutdown_drains_sessions_and_persists() {
    let data = dataset();
    let workload = queries(&data, 20);
    let persist =
        std::env::temp_dir().join(format!("gc-serve-smoke-{}-persist-dir", std::process::id()));
    let _ = std::fs::remove_dir_all(&persist);
    let socket = socket_path("drain");
    let daemon = spawn_server(make_cache(&data), &socket, |cfg| {
        cfg.persist_on_exit = Some(persist.clone());
    });

    // Warm the cache past one window so the persisted snapshot is
    // non-empty.
    let mut warm = connect(&socket);
    for (i, graph) in workload.iter().enumerate() {
        let frame = QueryFrame {
            id: i as u64,
            graph: graph.clone(),
            kind: None,
            verify_budget: None,
            max_hits: None,
            bypass: false,
            timeout_ms: None,
            allow: None,
        };
        match warm.query(frame).expect("query") {
            QueryOutcome::Result(_) => {}
            QueryOutcome::Busy { .. } => panic!("unexpected BUSY"),
        }
    }

    let mut bystander = connect(&socket);
    let mut requester = connect(&socket);
    requester.shutdown().expect("shutdown acknowledged");

    // Drain interrupts between frames, so a ping already in flight may
    // still be answered — but the bystander's session must close shortly
    // after (BYE reason=draining or EOF, both SessionClosed here).
    let mut closed = false;
    for _ in 0..200 {
        match bystander.ping(None) {
            Ok(()) => std::thread::sleep(Duration::from_millis(5)),
            Err(ClientError::SessionClosed { .. }) | Err(ClientError::Io(_)) => {
                closed = true;
                break;
            }
            Err(other) => panic!("unexpected bystander failure: {other}"),
        }
    }
    assert!(closed, "draining server kept answering the bystander");

    daemon.join().expect("join").expect("clean exit");
    assert!(
        persist.join("entries.txt").is_file(),
        "persist-on-exit wrote a restorable snapshot"
    );
    // The snapshot restores into a fresh cache with entries intact.
    let restored = make_cache(&data);
    restored.restore(&persist).expect("restore");
    assert!(restored.cache_len() > 0, "snapshot was non-empty");
    // New connections are refused after drain: the socket file is gone.
    assert!(!socket.exists(), "socket unlinked on exit");
    let _ = std::fs::remove_dir_all(&persist);
}

/// The drain/ctl race, pinned: a `STATS` frame already in flight when the
/// daemon starts draining must be *answered* before the session's
/// `BYE reason=draining` — `gc ctl stats` against a draining daemon gets
/// its counters, not a bare goodbye.
#[test]
fn drain_answers_in_flight_frames_before_bye() {
    let data = dataset();
    let socket = socket_path("drain-race");
    let cfg = ServeConfig {
        unix: Some(socket.clone()),
        ..Default::default()
    };
    let server = Server::bind(make_cache(&data), cfg).expect("bind");
    let handle = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run());

    // A raw session, so the reply order on the wire is observable.
    connect(&socket).quit().expect("probe session");
    let stream = UnixStream::connect(&socket).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("HELLO "), "greeting first: {line:?}");

    // Flip the drain flag first, then race the STATS in. The session
    // notices drain within one poll interval and its goodbye sweep must
    // still answer the frame that was already (or about to be) buffered.
    handle.shutdown();
    writer.write_all(b"STATS\n").expect("write");

    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.starts_with("STATS "),
        "drain swallowed the in-flight STATS, sent {line:?} instead"
    );
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.is_empty() || line.starts_with("BYE reason=draining"),
        "after the answer comes the goodbye, got {line:?}"
    );
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}

/// Session caps: connection attempts beyond `max_sessions` are refused
/// with a typed error, not left hanging.
#[test]
fn session_limit_is_enforced() {
    let data = dataset();
    let socket = socket_path("max-sessions");
    let daemon = spawn_server(make_cache(&data), &socket, |cfg| cfg.max_sessions = 1);

    let mut first = connect(&socket);
    first.ping(None).expect("first session lives");
    match Client::connect_unix(&socket) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "max-sessions"),
        Ok(_) => panic!("second session must be refused"),
        Err(other) => panic!("expected a typed refusal, got {other}"),
    }
    first.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}

/// Raw-socket protocol abuse: garbage frames get a typed `ERR` and the
/// session stays usable; an oversized frame gets `ERR code=too-large`
/// and the connection closes (framing cannot re-synchronise).
#[test]
fn malformed_and_oversized_frames_are_typed_errors() {
    let data = dataset();
    let socket = socket_path("abuse");
    let daemon = spawn_server(make_cache(&data), &socket, |_| {});

    // Wait for the accept loop, then talk raw bytes.
    connect(&socket).quit().expect("probe session");
    let stream = UnixStream::connect(&socket).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    let read_line = move |reader: &mut BufReader<UnixStream>, line: &mut String| {
        line.clear();
        reader.read_line(line).expect("read");
        line.trim_end().to_string()
    };

    assert!(
        read_line(&mut reader, &mut line).starts_with("HELLO "),
        "greeting first"
    );
    // Unknown keyword → typed ERR, session survives.
    writer.write_all(b"FROBNICATE now\n").expect("write");
    assert!(read_line(&mut reader, &mut line).starts_with("ERR code=bad-frame"));
    // Bad QUERY payload → typed ERR, session survives.
    writer
        .write_all(b"QUERY id=1 graph=2:9:0-5\n")
        .expect("write");
    assert!(read_line(&mut reader, &mut line).starts_with("ERR code=bad-frame"));
    // The session still answers after both.
    writer.write_all(b"PING token=alive\n").expect("write");
    assert_eq!(read_line(&mut reader, &mut line), "PONG token=alive");

    // Oversized frame: ERR too-large, then the server hangs up. The
    // server may notice the overrun and close while we are still
    // writing, so a BrokenPipe mid-write is also a pass — the reply (if
    // any arrived first) plus EOF is still readable from our side.
    let oversized = vec![b'A'; graphcache::server::MAX_FRAME_BYTES + 64];
    let write_result = writer
        .write_all(&oversized)
        .and_then(|()| writer.write_all(b"\n"));
    match write_result {
        Ok(()) => {
            assert!(read_line(&mut reader, &mut line).starts_with("ERR code=too-large"));
        }
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
            // Hung up mid-write; the ERR frame may or may not have been
            // flushed before the close. Drain whatever is left.
            line.clear();
            let _ = reader.read_line(&mut line);
            assert!(
                line.is_empty() || line.starts_with("ERR code=too-large"),
                "unexpected frame after oversized write: {line:?}"
            );
        }
        Err(e) => panic!("write: {e}"),
    }
    assert_eq!(
        read_line(&mut reader, &mut line),
        "",
        "connection closed after an oversized frame"
    );

    let mut client = connect(&socket);
    client.shutdown().expect("shutdown");
    daemon.join().expect("join").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}
