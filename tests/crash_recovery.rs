//! Kill-9 recovery end-to-end: a real `gc serve` daemon process writing
//! periodic background snapshots is killed with SIGKILL — no drain, no
//! exit handler — and a restarted daemon must come back serving the
//! committed baseline from the surviving snapshot generation. This is the
//! process-level counterpart of tests/fault_injection.rs: that sweep
//! proves every *simulated* crash point recovers; this test proves the
//! real thing (a dead process mid-snapshot-cadence) does too.

#![cfg(unix)]

use graphcache::core::{PersistedCache, QueryKind};
use graphcache::graph::io as graph_io;
use graphcache::server::{Client, QueryFrame, QueryOutcome, RetryPolicy, StatsScope};
use graphcache::workload::{generate_type_a, DatasetProfile, TypeAConfig};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn gc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_gc")
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gc-crash-rec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A daemon child that is never left running: killed on drop even when
/// an assertion fails first.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(dataset: &Path, socket: &Path, save: &Path, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(gc_bin());
    cmd.arg("serve")
        .arg("--dataset")
        .arg(dataset)
        .arg("--unix")
        .arg(socket)
        .arg("--persist-on-exit")
        .arg(save)
        .arg("--capacity")
        .arg("25")
        .arg("--window")
        .arg("4")
        .args(extra)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    Daemon(cmd.spawn().expect("spawn gc serve"))
}

fn connect(socket: &Path) -> Client {
    Client::connect_unix_with_retry(socket, &RetryPolicy::seeded(8, 42))
        .expect("daemon never accepted")
}

fn stat(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("STATS missing {key}"))
}

#[test]
fn kill_nine_mid_snapshot_cadence_recovers_committed_generation() {
    let tmp = Scratch::new("kill9");
    let dataset_path = tmp.path("d.txt");
    let socket = tmp.path("daemon.sock");
    let save = tmp.path("save");

    let dataset = DatasetProfile::aids().scaled(0.05).generate(11);
    graph_io::save_dataset(&dataset_path, &dataset).expect("write dataset");
    let workload: Vec<_> = generate_type_a(&dataset, &TypeAConfig::zz(1.4).count(60).seed(13))
        .graphs()
        .cloned()
        .collect();

    // Phase 1: daemon with a 1-second background snapshot cadence. Keep
    // it busy so snapshots race live queries, then SIGKILL it cold.
    let daemon = spawn_daemon(&dataset_path, &socket, &save, &["--snapshot-every", "1"]);
    let mut client = connect(&socket);
    let mut sent = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    let observed_snapshot = 'warm: loop {
        for graph in &workload {
            let frame = QueryFrame {
                id: sent,
                graph: graph.clone(),
                kind: None,
                verify_budget: None,
                max_hits: None,
                bypass: false,
                timeout_ms: Some(60_000),
                allow: None,
            };
            match client.query(frame).expect("query") {
                QueryOutcome::Result(_) => sent += 1,
                QueryOutcome::Busy { .. } => panic!("sequential client saw BUSY"),
            }
            // Kill once at least one background snapshot committed and a
            // second cadence tick is plausibly in flight — the point is a
            // cold stop with snapshot activity around it.
            if sent.is_multiple_of(10) {
                let stats = client.stats(StatsScope::Global).expect("stats");
                let written = stat(&stats, "snapshots_written");
                if written >= 2 {
                    break 'warm written;
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon never wrote two background snapshots"
            );
        }
    };
    drop(daemon); // SIGKILL: no drain, no persist-on-exit, no socket unlink
    let _ = std::fs::remove_file(&socket);

    // The kill must not have cost us the committed baseline: the save
    // directory recovers to a valid generation with entries.
    let recovered =
        PersistedCache::load_resilient(&save, QueryKind::Subgraph).expect("post-kill recovery");
    let generation = recovered
        .generation
        .expect("background snapshots commit through the manifest");
    assert!(generation >= 1, "at least one committed generation");
    let baseline_entries = recovered.state.entries.len() as u64;
    assert!(
        baseline_entries > 0,
        "observed {observed_snapshot} snapshots but the recovered baseline is empty"
    );

    // Phase 2: a restarted daemon restores that baseline and reports the
    // generation it came from.
    let daemon = spawn_daemon(
        &dataset_path,
        &socket,
        &save,
        &["--restore", save.to_str().unwrap()],
    );
    let mut client = connect(&socket);
    let stats = client.stats(StatsScope::Global).expect("stats");
    assert_eq!(
        stat(&stats, "cache_entries"),
        baseline_entries,
        "restart must serve exactly the committed baseline"
    );
    assert_eq!(
        stat(&stats, "recovered_generation"),
        generation,
        "restart must report the generation it restored from"
    );
    assert_eq!(stat(&stats, "snapshots_written"), 0, "fresh counter");
    // And it still answers queries on top of the restored state.
    let frame = QueryFrame {
        id: 0,
        graph: workload[0].clone(),
        kind: None,
        verify_budget: None,
        max_hits: None,
        bypass: false,
        timeout_ms: Some(60_000),
        allow: None,
    };
    match client.query(frame).expect("query after restore") {
        QueryOutcome::Result(_) => {}
        QueryOutcome::Busy { .. } => panic!("restored daemon rejected its first query"),
    }
    client.shutdown().expect("graceful shutdown");
    drop(daemon);
}

/// The stale-socket satellite: a SIGKILLed daemon leaves its socket file
/// behind; a restarted daemon must detect that nothing is listening,
/// unlink the stale file, and bind — while a *live* daemon's socket is
/// refused instead of stolen.
#[test]
fn stale_socket_is_reclaimed_live_socket_is_not() {
    let tmp = Scratch::new("stale-sock");
    let dataset_path = tmp.path("d.txt");
    let socket = tmp.path("daemon.sock");
    let save = tmp.path("save");

    let dataset = DatasetProfile::aids().scaled(0.02).generate(7);
    graph_io::save_dataset(&dataset_path, &dataset).expect("write dataset");

    // Boot, confirm liveness, SIGKILL — the socket file survives the kill.
    let daemon = spawn_daemon(&dataset_path, &socket, &save, &[]);
    connect(&socket).quit().expect("first daemon lives");
    drop(daemon);
    assert!(socket.exists(), "SIGKILL leaves the socket file behind");

    // A second daemon must treat the dead socket as stale and bind.
    let daemon = spawn_daemon(&dataset_path, &socket, &save, &[]);
    let mut client = connect(&socket);
    client
        .ping(Some("reclaimed"))
        .expect("rebound socket serves");

    // While it lives, a third daemon must refuse to steal the socket.
    let out = Command::new(gc_bin())
        .arg("serve")
        .arg("--dataset")
        .arg(&dataset_path)
        .arg("--unix")
        .arg(&socket)
        .output()
        .expect("spawn third daemon");
    assert_eq!(
        out.status.code(),
        Some(1),
        "binding a live socket must fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("live daemon"),
        "refusal names the cause: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The live daemon was not disturbed.
    client
        .ping(Some("still-here"))
        .expect("live daemon unharmed");
    client.shutdown().expect("graceful shutdown");
    drop(daemon);
}
